#include "baselines/fpmc.h"

#include <algorithm>

#include "math/vector_ops.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "window/window_walker.h"

namespace reconsume {
namespace baselines {

namespace {

/// One materialized training event: user, positive item, basket contents.
struct FpmcEvent {
  data::UserId user;
  data::ItemId positive;
  uint32_t basket_begin;
  uint32_t basket_count;
};

}  // namespace

Result<FpmcRecommender> FpmcRecommender::Fit(const data::TrainTestSplit& split,
                                             const FpmcConfig& config) {
  RC_TRACE_SPAN("fit/fpmc");
  if (config.latent_dim < 1) {
    return Status::InvalidArgument("FPMC: latent_dim must be >= 1");
  }
  if (config.basket_cap < 1) {
    return Status::InvalidArgument("FPMC: basket_cap must be >= 1");
  }

  const data::Dataset& dataset = split.dataset();
  util::Rng rng(config.seed);

  // Materialize events.
  std::vector<FpmcEvent> events;
  std::vector<data::ItemId> baskets;  // flat storage
  std::vector<data::ItemId> candidates;
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(static_cast<data::UserId>(u));
    const size_t train_end = split.split_point(static_cast<data::UserId>(u));
    window::WindowWalker walker(&seq, config.window_capacity);
    while (static_cast<size_t>(walker.step()) < train_end) {
      if (walker.NextIsEligibleRepeat(config.min_gap)) {
        const data::ItemId positive = walker.NextItem();
        walker.EligibleCandidates(config.min_gap, &candidates);
        std::erase(candidates, positive);
        if (!candidates.empty()) {
          FpmcEvent event;
          event.user = static_cast<data::UserId>(u);
          event.positive = positive;

          // Basket = distinct items in the window, subsampled to basket_cap.
          event.basket_begin = static_cast<uint32_t>(baskets.size());
          std::vector<data::ItemId> basket;
          basket.reserve(walker.window_counts().size());
          for (const auto& [item, entry] : walker.window_counts()) {
            (void)entry;
            basket.push_back(item);
          }
          if (static_cast<int>(basket.size()) > config.basket_cap) {
            rng.Shuffle(&basket);
            basket.resize(static_cast<size_t>(config.basket_cap));
          }
          event.basket_count = static_cast<uint32_t>(basket.size());
          baskets.insert(baskets.end(), basket.begin(), basket.end());
          events.push_back(event);
        }
      }
      walker.Advance();
    }
  }
  if (events.empty()) {
    return Status::FailedPrecondition("FPMC: no eligible training events");
  }

  FpmcRecommender model;
  const size_t k = static_cast<size_t>(config.latent_dim);
  const double init_std = 0.1;
  model.ui_ = math::Matrix(dataset.num_users(), k);
  model.iu_ = math::Matrix(dataset.num_items(), k);
  model.il_ = math::Matrix(dataset.num_items(), k);
  model.li_ = math::Matrix(dataset.num_items(), k);
  model.ui_.FillGaussian(&rng, 0.0, init_std);
  model.iu_.FillGaussian(&rng, 0.0, init_std);
  model.il_.FillGaussian(&rng, 0.0, init_std);
  model.li_.FillGaussian(&rng, 0.0, init_std);

  const double alpha = config.learning_rate;
  const double reg = config.regularization;
  std::vector<double> eta(k);   // mean basket factor
  std::vector<double> ui_old(k), il_diff(k);

  const int64_t total_steps =
      static_cast<int64_t>(config.epochs) * static_cast<int64_t>(events.size());
  const size_t num_items = dataset.num_items();
  for (int64_t step = 0; step < total_steps; ++step) {
    const FpmcEvent& event = events[rng.Uniform(events.size())];
    // Standard S-BPR negative draw: uniform over the full catalog (Rendle et
    // al. 2010). The paper applies FPMC to RRC as-is, which is why it barely
    // separates the within-window candidates (§5.3); drawing negatives from
    // the window instead would turn it into a different, RRC-native method.
    data::ItemId neg = event.positive;
    while (neg == event.positive) {
      neg = static_cast<data::ItemId>(rng.Uniform(num_items));
    }

    auto ui = model.ui_.Row(static_cast<size_t>(event.user));
    auto iu_i = model.iu_.Row(static_cast<size_t>(event.positive));
    auto iu_j = model.iu_.Row(static_cast<size_t>(neg));
    auto il_i = model.il_.Row(static_cast<size_t>(event.positive));
    auto il_j = model.il_.Row(static_cast<size_t>(neg));

    // eta = (1/|B|) sum LI_l.
    math::Fill(eta, 0.0);
    for (uint32_t b = 0; b < event.basket_count; ++b) {
      const data::ItemId l = baskets[event.basket_begin + b];
      math::Axpy(1.0, model.li_.Row(static_cast<size_t>(l)), eta);
    }
    math::Scale(1.0 / static_cast<double>(event.basket_count), eta);

    const double margin = math::Dot(ui, iu_i) - math::Dot(ui, iu_j) +
                          math::Dot(il_i, eta) - math::Dot(il_j, eta);
    const double g = alpha * (1.0 - math::Sigmoid(margin));

    std::copy(ui.begin(), ui.end(), ui_old.begin());
    math::Subtract(il_i, il_j, il_diff);

    // User and item->user factors.
    for (size_t c = 0; c < k; ++c) {
      ui[c] += g * (iu_i[c] - iu_j[c]) - alpha * reg * ui[c];
      const double iu_i_new = iu_i[c] + g * ui_old[c] - alpha * reg * iu_i[c];
      const double iu_j_new = iu_j[c] - g * ui_old[c] - alpha * reg * iu_j[c];
      iu_i[c] = iu_i_new;
      iu_j[c] = iu_j_new;
      il_i[c] += g * eta[c] - alpha * reg * il_i[c];
      il_j[c] -= g * eta[c] + alpha * reg * il_j[c];
    }
    // Basket item factors.
    const double basket_g = g / static_cast<double>(event.basket_count);
    for (uint32_t b = 0; b < event.basket_count; ++b) {
      const data::ItemId l = baskets[event.basket_begin + b];
      auto li = model.li_.Row(static_cast<size_t>(l));
      for (size_t c = 0; c < k; ++c) {
        li[c] += basket_g * il_diff[c] - alpha * reg * li[c];
      }
    }
  }

  if (!math::AllFinite(model.ui_.Data()) ||
      !math::AllFinite(model.iu_.Data()) ||
      !math::AllFinite(model.il_.Data()) ||
      !math::AllFinite(model.li_.Data())) {
    return Status::NumericalError("FPMC training diverged");
  }
  return model;
}

double FpmcRecommender::ScoreWithBasket(
    data::UserId u, data::ItemId i,
    std::span<const data::ItemId> basket) const {
  double score = math::Dot(ui_.Row(static_cast<size_t>(u)),
                           iu_.Row(static_cast<size_t>(i)));
  if (!basket.empty()) {
    double basket_score = 0.0;
    const auto il_i = il_.Row(static_cast<size_t>(i));
    for (data::ItemId l : basket) {
      basket_score += math::Dot(il_i, li_.Row(static_cast<size_t>(l)));
    }
    score += basket_score / static_cast<double>(basket.size());
  }
  return score;
}

void FpmcRecommender::Score(data::UserId user,
                            const window::WindowWalker& walker,
                            std::span<const data::ItemId> candidates,
                            std::span<double> scores) {
  // The basket term factors through the mean basket vector eta, which is
  // candidate-independent: score(i) = <UI_u, IU_i> + <IL_i, eta>. Computing
  // eta once keeps the per-candidate cost at two K-dim inner products (the
  // paper's "medium" latency bucket in Fig. 13).
  eta_scratch_.assign(il_.cols(), 0.0);
  size_t basket_size = 0;
  for (const auto& [item, entry] : walker.window_counts()) {
    (void)entry;
    math::Axpy(1.0, li_.Row(static_cast<size_t>(item)), eta_scratch_);
    ++basket_size;
  }
  if (basket_size > 0) {
    math::Scale(1.0 / static_cast<double>(basket_size), eta_scratch_);
  }
  const auto ui = ui_.Row(static_cast<size_t>(user));
  for (size_t i = 0; i < candidates.size(); ++i) {
    const size_t item = static_cast<size_t>(candidates[i]);
    scores[i] = math::Dot(ui, iu_.Row(item)) +
                math::Dot(il_.Row(item), eta_scratch_);
  }
}

}  // namespace baselines
}  // namespace reconsume
