// Interest-forgetting Markov recommender (Chen et al., AAAI 2015, ref. [14]
// — the authors' own precursor to TS-PPR, cited in §2.3/§4.4 as the source
// of the hyperbolic decay choice).
//
// A first-order item-to-item transition model whose context is the whole
// window, discounted by the interest-forgetting curve:
//
//   score(v | W_ut) = sum_{p in window} w(t - p) * T(x_p -> v)
//
// with w(g) = 1/g (hyperbolic) and T the row-normalized global transition
// matrix estimated from adjacent training pairs, linearly blended with the
// user's own transition counts (the "personalized" part):
//
//   T(i -> j) = (1 - beta) * T_global(i -> j) + beta * T_user(i -> j).
//
// Not part of the paper's §5.2 comparison; carried as an extension baseline
// (bench_ext_markov) because it is the natural "sequence model with
// forgetting" contrast to TS-PPR's feature-based approach.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/split.h"
#include "eval/recommender.h"
#include "util/status.h"

namespace reconsume {
namespace baselines {

struct MarkovIfConfig {
  /// Personalization blend in [0, 1]: 0 = global transitions only.
  double personalization = 0.5;
  /// Laplace smoothing added to every observed transition row.
  double smoothing = 0.1;
  /// Only the most recent `context_cap` window positions contribute
  /// (the w(g) tail beyond that is negligible and costs time).
  int context_cap = 50;
};

/// \brief Fitted interest-forgetting Markov model.
class MarkovIfRecommender : public eval::Recommender {
 public:
  static Result<MarkovIfRecommender> Fit(const data::TrainTestSplit& split,
                                         const MarkovIfConfig& config);

  std::string name() const override { return "MarkovIF"; }

  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<MarkovIfRecommender>(*this);
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override;

  /// Row-normalized transition probability (exposed for tests).
  double GlobalTransition(data::ItemId from, data::ItemId to) const;
  double UserTransition(data::UserId user, data::ItemId from,
                        data::ItemId to) const;

 private:
  using Row = std::unordered_map<data::ItemId, double>;

  MarkovIfRecommender() = default;

  static double Lookup(const std::unordered_map<data::ItemId, Row>& table,
                       data::ItemId from, data::ItemId to);

  MarkovIfConfig config_;
  std::unordered_map<data::ItemId, Row> global_;  ///< normalized rows
  /// Per-user normalized rows, keyed by (user << 32 | item) to avoid a map
  /// of maps of maps.
  std::unordered_map<uint64_t, Row> per_user_;
};

}  // namespace baselines
}  // namespace reconsume

