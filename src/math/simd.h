// SIMD capability layer: compile-time feature gates, runtime CPU detection,
// and 64-byte-aligned storage for the vectorized kernels in math/kernels.h.
//
// The kernel registry (kernels.h) dispatches on DetectSimdLevel(), which
// combines what this binary was compiled with, what the CPU reports at
// runtime, and an explicit RECONSUME_SIMD environment override:
//
//   RECONSUME_SIMD=auto    use the best supported level (default)
//   RECONSUME_SIMD=scalar  force the scalar reference kernels
//   RECONSUME_SIMD=avx2    force AVX2 (falls back to scalar, with a warning,
//                          when the CPU or build cannot run it)
//
// The AVX2 kernels are compiled with per-function target attributes, so no
// global -mavx2 flag is needed and the binary stays runnable on any x86-64.

#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

// Per-function target("avx2") attributes are a GCC/Clang x86 extension; on
// other compilers or architectures the registry only ever offers scalar.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RECONSUME_SIMD_X86 1
#else
#define RECONSUME_SIMD_X86 0
#endif

namespace reconsume {
namespace math {

/// Alignment of all kernel-facing buffers: one cache line, which also covers
/// the 32-byte AVX2 vector alignment.
inline constexpr size_t kSimdAlignment = 64;

/// \brief Instruction-set tiers the kernel registry can dispatch between.
enum class SimdLevel {
  kScalar,  ///< portable reference kernels (also the parity oracle)
  kAvx2,    ///< 256-bit AVX2 kernels, 4 doubles per vector
};

/// "scalar" / "avx2" — used in logs, bench labels, and the registry.
const char* SimdLevelName(SimdLevel level);

/// True when the *CPU* can execute AVX2 (independent of how we compiled).
bool CpuSupportsAvx2();

/// True when this binary carries AVX2 kernel bodies at all.
constexpr bool BuildSupportsAvx2() { return RECONSUME_SIMD_X86 != 0; }

/// Best level this build + CPU combination can run.
SimdLevel MaxSupportedSimdLevel();

/// MaxSupportedSimdLevel() filtered through the RECONSUME_SIMD override.
/// Resolved once per process (the first call wins; the result is cached).
SimdLevel DetectSimdLevel();

/// \brief Minimal 64-byte-aligned allocator for kernel-facing scratch.
///
/// std::vector's default allocator only guarantees alignof(std::max_align_t)
/// (16 on x86-64); the blocked SoA layout and tile scratch want cache-line
/// alignment so vector loads never split lines.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kSimdAlignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(kSimdAlignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

/// Cache-line-aligned double buffer; the storage type of every blocked SoA
/// table and kernel scratch tile.
using AlignedVector = std::vector<double, AlignedAllocator<double>>;

}  // namespace math
}  // namespace reconsume
