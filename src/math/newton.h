// Damped Newton's method for smooth convex minimization.
//
// Substrate for the Cox proportional-hazards fit (Survival baseline) and the
// DYRC weight estimation: both maximize a smooth log-likelihood in a handful
// of parameters.

#pragma once

#include <functional>
#include <vector>

#include "math/matrix.h"
#include "util/status.h"

namespace reconsume {
namespace math {

/// \brief Objective value with its first two derivatives at a point.
struct ObjectiveEvaluation {
  double value = 0.0;            ///< f(x)
  std::vector<double> gradient;  ///< ∇f(x)
  Matrix hessian;                ///< ∇²f(x); must be symmetric
};

/// Callback computing f, ∇f and ∇²f at `x`.
using SecondOrderObjective =
    std::function<Result<ObjectiveEvaluation>(const std::vector<double>& x)>;

struct NewtonOptions {
  int max_iterations = 100;
  double gradient_tolerance = 1e-8;  ///< stop when ||∇f||_inf below this
  double step_shrink = 0.5;          ///< backtracking factor
  double armijo_c = 1e-4;            ///< sufficient-decrease constant
  int max_backtracks = 40;
  /// Levenberg-style ridge added to the Hessian when the raw Newton system is
  /// not SPD; grows geometrically until the solve succeeds.
  double initial_ridge = 1e-8;
};

struct NewtonReport {
  std::vector<double> solution;
  double objective_value = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes `objective` starting from `x0`.
///
/// Uses Cholesky on (H + ridge I) with an Armijo backtracking line search.
/// Returns NumericalError if the objective produces non-finite values.
Result<NewtonReport> MinimizeNewton(const SecondOrderObjective& objective,
                                    std::vector<double> x0,
                                    const NewtonOptions& options = {});

}  // namespace math
}  // namespace reconsume

