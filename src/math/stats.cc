#include "math/stats.h"

#include <numeric>

namespace reconsume {
namespace math {

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(index),
                   values.end());
  return values[index];
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  RECONSUME_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Average ranks (1-based) with tie handling.
std::vector<double> Ranks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  RECONSUME_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

}  // namespace math
}  // namespace reconsume
