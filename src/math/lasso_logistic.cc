#include "math/lasso_logistic.h"

#include <cmath>

#include "math/vector_ops.h"
#include "util/logging.h"

namespace reconsume {
namespace math {

double LassoLogisticModel::PredictProbability(
    const std::vector<double>& features) const {
  RECONSUME_CHECK(features.size() == weights_.size())
      << "feature width " << features.size() << " != model width "
      << weights_.size();
  return Sigmoid(Dot(weights_, features) + intercept_);
}

int LassoLogisticModel::NumZeroWeights() const {
  int zeros = 0;
  for (double w : weights_) {
    if (w == 0.0) ++zeros;
  }
  return zeros;
}

namespace {

double SoftThreshold(double value, double threshold) {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}

// Mean logistic loss over the data at (w, b); fills margins as w·x_i + b.
double LogisticLoss(const std::vector<std::vector<double>>& x,
                    const std::vector<int>& y, const std::vector<double>& w,
                    double b) {
  double loss = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double margin = Dot(w, x[i]) + b;
    // -y log p - (1-y) log (1-p) = log(1+e^m) - y m.
    loss += Log1pExp(margin) - (y[i] == 1 ? margin : 0.0);
  }
  return loss / static_cast<double>(x.size());
}

}  // namespace

Result<LassoLogisticModel> FitLassoLogistic(
    const std::vector<std::vector<double>>& x, const std::vector<int>& y,
    const LassoLogisticOptions& options) {
  if (x.empty()) return Status::InvalidArgument("FitLassoLogistic: no rows");
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitLassoLogistic: |x| != |y|");
  }
  const size_t dim = x[0].size();
  for (const auto& row : x) {
    if (row.size() != dim) {
      return Status::InvalidArgument("FitLassoLogistic: ragged feature rows");
    }
    if (!AllFinite(row)) {
      return Status::InvalidArgument("FitLassoLogistic: non-finite feature");
    }
  }
  for (int label : y) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("FitLassoLogistic: labels must be 0/1");
    }
  }

  const double n = static_cast<double>(x.size());
  std::vector<double> w(dim, 0.0);
  double b = 0.0;
  double step = options.initial_step;
  double loss = LogisticLoss(x, y, w, b);

  std::vector<double> grad_w(dim);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Gradient of the smooth part.
    Fill(grad_w, 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double p = Sigmoid(Dot(w, x[i]) + b);
      const double residual = p - static_cast<double>(y[i]);
      Axpy(residual, x[i], grad_w);
      grad_b += residual;
    }
    Scale(1.0 / n, grad_w);
    grad_b /= n;
    RC_DCHECK(AllFinite(grad_w)) << "LASSO gradient diverged at iter " << iter;
    RC_DCHECK_FINITE(grad_b);

    // Proximal step with backtracking on the smooth loss.
    std::vector<double> w_next(dim);
    double b_next = 0.0;
    double max_change = 0.0;
    while (true) {
      max_change = 0.0;
      for (size_t j = 0; j < dim; ++j) {
        w_next[j] = SoftThreshold(w[j] - step * grad_w[j],
                                  step * options.l1_penalty);
        max_change = std::max(max_change, std::fabs(w_next[j] - w[j]));
      }
      b_next = b - step * grad_b;
      max_change = std::max(max_change, std::fabs(b_next - b));

      const double next_loss = LogisticLoss(x, y, w_next, b_next);
      // Quadratic upper bound check (standard ISTA backtracking).
      double quad = loss;
      for (size_t j = 0; j < dim; ++j) {
        const double d = w_next[j] - w[j];
        quad += grad_w[j] * d + d * d / (2.0 * step);
      }
      const double db = b_next - b;
      quad += grad_b * db + db * db / (2.0 * step);
      if (next_loss <= quad + 1e-12 || step < 1e-12) {
        loss = next_loss;
        break;
      }
      step *= options.step_shrink;
    }

    w.swap(w_next);
    b = b_next;
    if (!std::isfinite(loss)) {
      return Status::NumericalError(
          "FitLassoLogistic: non-finite loss at iteration " +
          std::to_string(iter));
    }
    if (max_change < options.tolerance) break;
  }

  if (!AllFinite(w) || !std::isfinite(b)) {
    return Status::NumericalError("FitLassoLogistic: diverged");
  }
  return LassoLogisticModel(std::move(w), b);
}

}  // namespace math
}  // namespace reconsume
