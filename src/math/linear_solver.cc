#include "math/linear_solver.h"

#include <cmath>

namespace reconsume {
namespace math {

Result<std::vector<double>> SolveCholesky(const Matrix& a,
                                          const std::vector<double>& b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveCholesky: dimension mismatch");
  }
  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::NumericalError("SolveCholesky: matrix not SPD");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Backward solve L^T x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Result<std::vector<double>> SolveLu(Matrix a, std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveLu: dimension mismatch");
  }
  constexpr double kPivotEps = 1e-12;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(a(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < kPivotEps || !std::isfinite(best)) {
      return Status::NumericalError("SolveLu: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = b[i];
    for (size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
    x[i] = sum / a(i, i);
  }
  return x;
}

}  // namespace math
}  // namespace reconsume
