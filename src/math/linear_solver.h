// Small dense linear solvers backing the Newton step of the Cox model and
// the DYRC likelihood ascent.

#pragma once

#include <vector>

#include "math/matrix.h"
#include "util/status.h"

namespace reconsume {
namespace math {

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Returns NumericalError when A is not (numerically) SPD.
Result<std::vector<double>> SolveCholesky(const Matrix& a,
                                          const std::vector<double>& b);

/// Solves A x = b for a general square A via partially pivoted LU.
/// Returns NumericalError for (numerically) singular A.
Result<std::vector<double>> SolveLu(Matrix a, std::vector<double> b);

}  // namespace math
}  // namespace reconsume

