#include "math/simd.h"

#include <cstring>
#include <string>

#include "util/logging.h"

namespace reconsume {
namespace math {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CpuSupportsAvx2() {
#if RECONSUME_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel MaxSupportedSimdLevel() {
  return (BuildSupportsAvx2() && CpuSupportsAvx2()) ? SimdLevel::kAvx2
                                                    : SimdLevel::kScalar;
}

namespace {

SimdLevel ResolveSimdLevel() {
  const char* env = std::getenv("RECONSUME_SIMD");
  const std::string choice = env == nullptr ? "auto" : env;
  if (choice == "scalar") return SimdLevel::kScalar;
  if (choice == "avx2" || choice == "auto") {
    const SimdLevel max = MaxSupportedSimdLevel();
    if (choice == "avx2" && max != SimdLevel::kAvx2) {
      RECONSUME_LOG(Warning)
          << "RECONSUME_SIMD=avx2 requested but "
          << (BuildSupportsAvx2() ? "the CPU does not support AVX2"
                                  : "this build carries no AVX2 kernels")
          << "; falling back to scalar kernels";
      return SimdLevel::kScalar;
    }
    return max;
  }
  RECONSUME_LOG(Warning) << "unknown RECONSUME_SIMD value '" << choice
                         << "' (expected auto|scalar|avx2); using auto";
  return MaxSupportedSimdLevel();
}

}  // namespace

SimdLevel DetectSimdLevel() {
  static const SimdLevel level = ResolveSimdLevel();
  return level;
}

}  // namespace math
}  // namespace reconsume
