#include "math/newton.h"

#include <cmath>

#include "math/linear_solver.h"
#include "math/vector_ops.h"
#include "util/check.h"

namespace reconsume {
namespace math {

Result<NewtonReport> MinimizeNewton(const SecondOrderObjective& objective,
                                    std::vector<double> x0,
                                    const NewtonOptions& options) {
  const size_t n = x0.size();
  NewtonReport report;
  report.solution = std::move(x0);

  RECONSUME_ASSIGN_OR_RETURN(ObjectiveEvaluation eval,
                             objective(report.solution));
  if (!std::isfinite(eval.value) || !AllFinite(eval.gradient)) {
    return Status::NumericalError("MinimizeNewton: non-finite start");
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    report.iterations = iter;
    if (MaxAbs(eval.gradient) <= options.gradient_tolerance) {
      report.converged = true;
      break;
    }

    // Newton direction d solves (H + ridge I) d = -g; escalate the ridge until
    // Cholesky accepts the system.
    std::vector<double> neg_grad(n);
    for (size_t i = 0; i < n; ++i) neg_grad[i] = -eval.gradient[i];

    std::vector<double> direction;
    double ridge = 0.0;
    for (int attempt = 0; attempt < 60; ++attempt) {
      Matrix h = eval.hessian;
      if (ridge > 0) {
        for (size_t i = 0; i < n; ++i) h(i, i) += ridge;
      }
      auto solved = SolveCholesky(h, neg_grad);
      if (solved.ok()) {
        direction = std::move(solved).ValueOrDie();
        RC_DCHECK(AllFinite(direction))
            << "Cholesky produced a non-finite Newton direction";
        break;
      }
      ridge = ridge == 0.0 ? options.initial_ridge : ridge * 10.0;
    }
    if (direction.empty()) {
      return Status::NumericalError(
          "MinimizeNewton: Hessian unusable even with ridge");
    }

    // Armijo backtracking on f(x + t d).
    const double slope = Dot(eval.gradient, direction);
    double t = 1.0;
    bool stepped = false;
    for (int bt = 0; bt < options.max_backtracks; ++bt) {
      std::vector<double> candidate = report.solution;
      Axpy(t, direction, candidate);
      auto cand_eval = objective(candidate);
      if (cand_eval.ok()) {
        const ObjectiveEvaluation& ce = cand_eval.ValueOrDie();
        if (std::isfinite(ce.value) &&
            ce.value <= eval.value + options.armijo_c * t * slope) {
          report.solution = std::move(candidate);
          eval = std::move(cand_eval).ValueOrDie();
          stepped = true;
          break;
        }
      }
      t *= options.step_shrink;
    }
    if (!stepped) {
      // Line search stalled: treat the current point as converged-enough.
      report.converged = MaxAbs(eval.gradient) <= 1e-4;
      break;
    }
  }

  report.objective_value = eval.value;
  return report;
}

}  // namespace math
}  // namespace reconsume
