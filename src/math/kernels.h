// Vectorized BLAS-1/2 kernels behind a runtime-dispatched registry.
//
// vector_ops.h stays the plain scalar reference for the *training* inner
// loop; this layer is the read-side hot path (candidate scoring, Eq. 5).
// Every kernel exists in a scalar and an AVX2 flavor with a pinned
// floating-point reduction contract, so the two flavors are bit-identical
// and the parity tests (tests/kernels_test.cc) can assert exact equality:
//
//   * Dot / DotBatch use a *striped* reduction: 8 independent accumulators,
//     lane j summing elements j, j+8, j+16, ... of the first n&~7 elements
//     in index order, combined as ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)),
//     plus a sequential tail. The AVX2 version performs the same per-lane
//     operation sequence with two 4-double vectors (no FMA — fused rounding
//     would break bit parity with the scalar mirror). Note this differs from
//     vector_ops::Dot's sequential sum in the last ulp; anything needing
//     bit-compatibility with the trainer keeps using vector_ops.
//   * Axpy is element-wise, so scalar and AVX2 round identically.
//   * ScoreBlock vectorizes *across items*, not across dims: each lane
//     accumulates its own item's sum in plain index order, which makes the
//     result bit-identical to a per-item sequential vector_ops::Dot. This is
//     the kernel the scoring engine builds on, and why the whole SIMD
//     scoring path can be bit-identical to its scalar fallback.
//
// Dispatch: ActiveKernels() resolves once per process from
// math::DetectSimdLevel() (CPU detection + RECONSUME_SIMD override).

#pragma once

#include <cstddef>
#include <span>

#include "math/simd.h"

namespace reconsume {
namespace math {

/// Items per SoA block / scoring tile: 8 doubles = two AVX2 vectors = one
/// 64-byte cache line per dimension.
inline constexpr size_t kBlockItems = 8;

/// \brief One instruction-set tier's kernel implementations.
///
/// Raw-pointer signatures keep the registry a plain aggregate of function
/// pointers (trivially hot-swappable, no virtual dispatch); the span
/// wrappers below add the debug-mode shape checks.
struct KernelOps {
  const char* name;  ///< "scalar" or "avx2"

  /// Striped-reduction dot product <x, y> over n elements.
  double (*dot)(const double* x, const double* y, size_t n);

  /// y += alpha * x over n elements.
  void (*axpy)(double alpha, const double* x, double* y, size_t n);

  /// out[r] = dot(q, rows + r*stride) for num_rows row-major rows of k
  /// elements each; the "one query against N contiguous rows" kernel.
  void (*dot_batch)(const double* q, const double* rows, size_t num_rows,
                    size_t k, size_t stride, double* out);

  /// out[l] = sum_d q[d] * block[d*kBlockItems + l] for l < kBlockItems.
  /// `block` is one K x kBlockItems dim-major SoA tile: for each dimension
  /// d, the kBlockItems items' values are contiguous. Per-lane accumulation
  /// is in plain d order, so each out[l] is bit-identical to a sequential
  /// dot of q with item l's factor row.
  void (*score_block)(const double* q, size_t k, const double* block,
                      double* out);
};

/// The portable reference tier (also the bit-parity oracle).
const KernelOps& ScalarKernels();

/// The AVX2 tier; identical to ScalarKernels() when the build cannot carry
/// AVX2 bodies (non-x86 or non-GCC/Clang).
const KernelOps& Avx2Kernels();

/// The tier for an explicit level (parity tests, bench sweeps).
const KernelOps& KernelsFor(SimdLevel level);

/// The process-wide tier: KernelsFor(DetectSimdLevel()), resolved once.
const KernelOps& ActiveKernels();

/// Span convenience wrappers over a KernelOps tier (debug shape checks).
double KernelDot(const KernelOps& ops, std::span<const double> x,
                 std::span<const double> y);
void KernelAxpy(const KernelOps& ops, double alpha, std::span<const double> x,
                std::span<double> y);
void KernelDotBatch(const KernelOps& ops, std::span<const double> q,
                    std::span<const double> rows, size_t num_rows,
                    size_t stride, std::span<double> out);
void KernelScoreBlock(const KernelOps& ops, std::span<const double> q,
                      std::span<const double> block, std::span<double> out);

}  // namespace math
}  // namespace reconsume
