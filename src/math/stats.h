// Streaming statistics and histograms used by the dataset reports (Table 2)
// and the feature-rank distributions (Fig. 4).

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace reconsume {
namespace math {

/// \brief Welford online mean/variance accumulator.
class OnlineMoments {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Fixed-width integer histogram over [0, num_buckets); out-of-range
/// values are clamped into the last bucket.
class CountHistogram {
 public:
  explicit CountHistogram(size_t num_buckets) : counts_(num_buckets, 0) {
    RECONSUME_CHECK(num_buckets > 0);
  }

  void Add(size_t bucket) {
    counts_[std::min(bucket, counts_.size() - 1)] += 1;
  }

  int64_t count(size_t bucket) const { return counts_.at(bucket); }
  size_t num_buckets() const { return counts_.size(); }
  int64_t total() const {
    int64_t t = 0;
    for (int64_t c : counts_) t += c;
    return t;
  }
  const std::vector<int64_t>& counts() const { return counts_; }

 private:
  std::vector<int64_t> counts_;
};

/// Exact quantile by copy-and-select; fine for report-time use.
/// q in [0, 1]; returns 0 for empty input.
double Quantile(std::vector<double> values, double q);

/// Pearson correlation of two equally sized samples; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation; average ranks for ties.
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace math
}  // namespace reconsume

