// Dense row-major matrix used for the latent factor tables U, V and the
// per-user feature mappings A_u.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/vector_ops.h"
#include "util/check.h"
#include "util/random.h"

namespace reconsume {
namespace math {

/// \brief Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    RC_DCHECK_INDEX(r, rows_);
    RC_DCHECK_INDEX(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    RC_DCHECK_INDEX(r, rows_);
    RC_DCHECK_INDEX(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Mutable view of row r.
  std::span<double> Row(size_t r) {
    RC_DCHECK_INDEX(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> Row(size_t r) const {
    RC_DCHECK_INDEX(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> Data() { return data_; }
  std::span<const double> Data() const { return data_; }

  /// Builds an identity-like matrix (ones on the main diagonal).
  static Matrix Identity(size_t n) {
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// Fills with N(mean, stddev^2) draws.
  void FillGaussian(util::Rng* rng, double mean, double stddev) {
    for (double& v : data_) v = rng->Gaussian(mean, stddev);
  }

  /// out = this * x (matrix-vector product). Precondition: sizes match.
  void MultiplyVector(std::span<const double> x, std::span<double> out) const {
    RC_DCHECK(x.size() == cols_ && out.size() == rows_)
        << "shape (" << rows_ << "x" << cols_ << ") vs x=" << x.size()
        << " out=" << out.size();
    for (size_t r = 0; r < rows_; ++r) out[r] = Dot(Row(r), x);
  }

  /// out += alpha * this * x.
  void MultiplyVectorAccumulate(double alpha, std::span<const double> x,
                                std::span<double> out) const {
    RC_DCHECK(x.size() == cols_ && out.size() == rows_)
        << "shape (" << rows_ << "x" << cols_ << ") vs x=" << x.size()
        << " out=" << out.size();
    for (size_t r = 0; r < rows_; ++r) out[r] += alpha * Dot(Row(r), x);
  }

  /// this += alpha * u * f^T (rank-1 update; Eq. 15 of the paper).
  void AddOuterProduct(double alpha, std::span<const double> u,
                       std::span<const double> f) {
    RC_DCHECK(u.size() == rows_ && f.size() == cols_)
        << "shape (" << rows_ << "x" << cols_ << ") vs u=" << u.size()
        << " f=" << f.size();
    for (size_t r = 0; r < rows_; ++r) {
      const double au = alpha * u[r];
      double* row = data_.data() + r * cols_;
      for (size_t c = 0; c < cols_; ++c) row[c] += au * f[c];
    }
  }

  /// Sum of squared entries; the ||·||_F^2 regularizer.
  double SquaredFrobeniusNorm() const { return SquaredNorm(data_); }

  /// this *= alpha.
  void ScaleInPlace(double alpha) { Scale(alpha, data_); }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace math
}  // namespace reconsume

