// BLAS-1-style kernels over contiguous double spans.
//
// The TS-PPR trainer (Algorithm 1) is dominated by dot products, axpy
// updates, and rank-1 outer-product updates on small dense vectors; these
// free functions keep that inner loop allocation-free.

#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "util/check.h"

namespace reconsume {
namespace math {

/// Dot product <x, y>. Precondition: equal sizes.
inline double Dot(std::span<const double> x, std::span<const double> y) {
  RC_DCHECK(x.size() == y.size()) << "dim mismatch: " << x.size() << " vs " << y.size();
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

/// y += alpha * x.
inline void Axpy(double alpha, std::span<const double> x,
                 std::span<double> y) {
  RC_DCHECK(x.size() == y.size()) << "dim mismatch: " << x.size() << " vs " << y.size();
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x *= alpha.
inline void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

/// out = x - y (out may alias x).
inline void Subtract(std::span<const double> x, std::span<const double> y,
                     std::span<double> out) {
  RC_DCHECK(x.size() == y.size() && x.size() == out.size())
      << "dim mismatch: " << x.size() << ", " << y.size() << ", " << out.size();
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
}

/// Squared Euclidean norm.
inline double SquaredNorm(std::span<const double> x) { return Dot(x, x); }

/// Euclidean norm.
inline double Norm(std::span<const double> x) { return std::sqrt(SquaredNorm(x)); }

/// L-infinity norm.
inline double MaxAbs(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::fabs(v));
  return m;
}

/// True iff every element is finite.
inline bool AllFinite(std::span<const double> x) {
  for (double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Fills x with `value`.
inline void Fill(std::span<double> x, double value) {
  for (double& v : x) v = value;
}

/// Numerically safe logistic function; exact at the tails.
inline double Sigmoid(double m) {
  if (m >= 0) {
    const double z = std::exp(-m);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(m);
  return z / (1.0 + z);
}

/// log(1 + exp(m)) without overflow; the pairwise-ranking loss -ln sigma(m).
inline double Log1pExp(double m) {
  if (m > 0) return m + std::log1p(std::exp(-m));
  return std::log1p(std::exp(m));
}

}  // namespace math
}  // namespace reconsume

