// L1-regularized logistic regression fitted by proximal gradient descent
// (ISTA with backtracking).
//
// This is the "linear Lasso method" of the STREC paper [13], which the
// combined experiment in §5.7 uses as the repeat/novel switch upstream of
// TS-PPR.

#pragma once

#include <vector>

#include "util/status.h"

namespace reconsume {
namespace math {

struct LassoLogisticOptions {
  double l1_penalty = 1e-3;      ///< lambda on ||w||_1 (intercept exempt)
  int max_iterations = 2000;
  double tolerance = 1e-7;       ///< stop when max parameter change below this
  double initial_step = 1.0;
  double step_shrink = 0.5;
};

/// \brief Fitted sparse linear classifier p(y=1|x) = sigmoid(w·x + b).
class LassoLogisticModel {
 public:
  LassoLogisticModel() = default;
  LassoLogisticModel(std::vector<double> weights, double intercept)
      : weights_(std::move(weights)), intercept_(intercept) {}

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

  /// Probability that `features` belongs to the positive class.
  double PredictProbability(const std::vector<double>& features) const;

  /// Hard decision at threshold 0.5.
  bool Predict(const std::vector<double>& features) const {
    return PredictProbability(features) >= 0.5;
  }

  /// Number of exactly zero weights (Lasso sparsity).
  int NumZeroWeights() const;

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

/// Fits the model on rows `x` (all the same width) with labels in {0, 1}.
/// Returns InvalidArgument for ragged or empty input.
Result<LassoLogisticModel> FitLassoLogistic(
    const std::vector<std::vector<double>>& x, const std::vector<int>& y,
    const LassoLogisticOptions& options = {});

}  // namespace math
}  // namespace reconsume

