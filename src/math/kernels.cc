#include "math/kernels.h"

#include "util/check.h"

#if RECONSUME_SIMD_X86
#include <immintrin.h>
#endif

namespace reconsume {
namespace math {

namespace {

// ---------------------------------------------------------------------------
// Scalar tier. The striped layout mirrors the AVX2 lane structure exactly:
// 8 accumulators, lane j owning elements j, j+8, ..., combined pairwise.
// ---------------------------------------------------------------------------

double ScalarDot(const double* x, const double* y, size_t n) {
  double lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const size_t main = n & ~size_t{7};
  for (size_t i = 0; i < main; i += 8) {
    for (size_t j = 0; j < 8; ++j) lane[j] += x[i + j] * y[i + j];
  }
  double acc = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
               ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (size_t i = main; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void ScalarAxpy(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarDotBatch(const double* q, const double* rows, size_t num_rows,
                    size_t k, size_t stride, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = ScalarDot(q, rows + r * stride, k);
  }
}

void ScalarScoreBlock(const double* q, size_t k, const double* block,
                      double* out) {
  double acc[kBlockItems] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t d = 0; d < k; ++d) {
    const double qd = q[d];
    const double* items = block + d * kBlockItems;
    for (size_t l = 0; l < kBlockItems; ++l) acc[l] += qd * items[l];
  }
  for (size_t l = 0; l < kBlockItems; ++l) out[l] = acc[l];
}

#if RECONSUME_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 tier. mul+add only (no FMA): per lane this is the same operation
// sequence as the scalar mirror, so results are bit-identical.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) double Avx2Dot(const double* x,
                                               const double* y, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();  // lanes 0..3 (i % 8 in 0..3)
  __m256d acc_hi = _mm256_setzero_pd();  // lanes 4..7
  const size_t main = n & ~size_t{7};
  for (size_t i = 0; i < main; i += 8) {
    acc_lo = _mm256_add_pd(
        acc_lo, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4),
                                                 _mm256_loadu_pd(y + i + 4)));
  }
  alignas(32) double lane[8];
  _mm256_store_pd(lane, acc_lo);
  _mm256_store_pd(lane + 4, acc_hi);
  double acc = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
               ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (size_t i = main; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

__attribute__((target("avx2"))) void Avx2Axpy(double alpha, const double* x,
                                              double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  const size_t main = n & ~size_t{3};
  for (size_t i = 0; i < main; i += 4) {
    const __m256d yi = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(yi, _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (size_t i = main; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void Avx2DotBatch(const double* q,
                                                  const double* rows,
                                                  size_t num_rows, size_t k,
                                                  size_t stride, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = Avx2Dot(q, rows + r * stride, k);
  }
}

__attribute__((target("avx2"))) void Avx2ScoreBlock(const double* q, size_t k,
                                                    const double* block,
                                                    double* out) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  for (size_t d = 0; d < k; ++d) {
    const __m256d qd = _mm256_set1_pd(q[d]);
    const double* items = block + d * kBlockItems;
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(qd, _mm256_loadu_pd(items)));
    acc_hi =
        _mm256_add_pd(acc_hi, _mm256_mul_pd(qd, _mm256_loadu_pd(items + 4)));
  }
  _mm256_storeu_pd(out, acc_lo);
  _mm256_storeu_pd(out + 4, acc_hi);
}

#endif  // RECONSUME_SIMD_X86

}  // namespace

const KernelOps& ScalarKernels() {
  static constexpr KernelOps ops = {"scalar", ScalarDot, ScalarAxpy,
                                    ScalarDotBatch, ScalarScoreBlock};
  return ops;
}

const KernelOps& Avx2Kernels() {
#if RECONSUME_SIMD_X86
  static constexpr KernelOps ops = {"avx2", Avx2Dot, Avx2Axpy, Avx2DotBatch,
                                    Avx2ScoreBlock};
  return ops;
#else
  return ScalarKernels();
#endif
}

const KernelOps& KernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return ScalarKernels();
    case SimdLevel::kAvx2:
      return Avx2Kernels();
  }
  return ScalarKernels();
}

const KernelOps& ActiveKernels() {
  static const KernelOps& ops = KernelsFor(DetectSimdLevel());
  return ops;
}

double KernelDot(const KernelOps& ops, std::span<const double> x,
                 std::span<const double> y) {
  RC_DCHECK(x.size() == y.size())
      << "dim mismatch: " << x.size() << " vs " << y.size();
  return ops.dot(x.data(), y.data(), x.size());
}

void KernelAxpy(const KernelOps& ops, double alpha, std::span<const double> x,
                std::span<double> y) {
  RC_DCHECK(x.size() == y.size())
      << "dim mismatch: " << x.size() << " vs " << y.size();
  ops.axpy(alpha, x.data(), y.data(), x.size());
}

void KernelDotBatch(const KernelOps& ops, std::span<const double> q,
                    std::span<const double> rows, size_t num_rows,
                    size_t stride, std::span<double> out) {
  RC_DCHECK(out.size() >= num_rows);
  RC_DCHECK(stride >= q.size());
  RC_DCHECK(num_rows == 0 || rows.size() >= (num_rows - 1) * stride + q.size());
  ops.dot_batch(q.data(), rows.data(), num_rows, q.size(), stride, out.data());
}

void KernelScoreBlock(const KernelOps& ops, std::span<const double> q,
                      std::span<const double> block, std::span<double> out) {
  RC_DCHECK(block.size() >= q.size() * kBlockItems);
  RC_DCHECK(out.size() >= kBlockItems);
  ops.score_block(q.data(), q.size(), block.data(), out.data());
}

}  // namespace math
}  // namespace reconsume
