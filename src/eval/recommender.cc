#include "eval/recommender.h"

#include <algorithm>
#include <numeric>

namespace reconsume {
namespace eval {

void SelectTopN(std::span<const double> scores, int n, std::vector<int>* top) {
  top->resize(scores.size());
  std::iota(top->begin(), top->end(), 0);
  const size_t take = std::min(static_cast<size_t>(std::max(n, 0)),
                               scores.size());
  std::partial_sort(top->begin(), top->begin() + static_cast<ptrdiff_t>(take),
                    top->end(), [&](int a, int b) {
                      if (scores[static_cast<size_t>(a)] !=
                          scores[static_cast<size_t>(b)]) {
                        return scores[static_cast<size_t>(a)] >
                               scores[static_cast<size_t>(b)];
                      }
                      return a < b;
                    });
  top->resize(take);
}

void SelectTopNHeap(std::span<const double> scores, int n,
                    std::vector<int>* top) {
  top->clear();
  const size_t take =
      std::min(static_cast<size_t>(std::max(n, 0)), scores.size());
  if (take == 0) return;
  // "prefer(a, b)": a ranks ahead of b. With this as the heap comparator the
  // front is the *least preferred* of the kept set — the one a better
  // candidate displaces.
  const auto prefer = [&](int a, int b) {
    if (scores[static_cast<size_t>(a)] != scores[static_cast<size_t>(b)]) {
      return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
    }
    return a < b;
  };
  top->reserve(take);
  for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
    if (top->size() < take) {
      top->push_back(i);
      std::push_heap(top->begin(), top->end(), prefer);
    } else if (prefer(i, top->front())) {
      std::pop_heap(top->begin(), top->end(), prefer);
      top->back() = i;
      std::push_heap(top->begin(), top->end(), prefer);
    }
  }
  // sort_heap leaves ascending order under `prefer`, i.e. best-first — the
  // same total order SelectTopN's partial_sort produces.
  std::sort_heap(top->begin(), top->end(), prefer);
}

}  // namespace eval
}  // namespace reconsume
