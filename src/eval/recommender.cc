#include "eval/recommender.h"

#include <algorithm>
#include <numeric>

namespace reconsume {
namespace eval {

void SelectTopN(std::span<const double> scores, int n, std::vector<int>* top) {
  top->resize(scores.size());
  std::iota(top->begin(), top->end(), 0);
  const size_t take = std::min(static_cast<size_t>(std::max(n, 0)),
                               scores.size());
  std::partial_sort(top->begin(), top->begin() + static_cast<ptrdiff_t>(take),
                    top->end(), [&](int a, int b) {
                      if (scores[static_cast<size_t>(a)] !=
                          scores[static_cast<size_t>(b)]) {
                        return scores[static_cast<size_t>(a)] >
                               scores[static_cast<size_t>(b)];
                      }
                      return a < b;
                    });
  top->resize(take);
}

}  // namespace eval
}  // namespace reconsume
