// The RRC evaluation protocol of §5.1/§5.3: slide a window over each user's
// test segment, and at every eligible repeat event ask the recommender to
// rank the window candidates. Reports MaAP@N and MiAP@N (Eq. 22–24).

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/split.h"
#include "eval/recommender.h"
#include "util/status.h"

namespace reconsume {
namespace eval {

/// \brief Which task the protocol evaluates.
enum class EvalTask {
  /// RRC (the paper's protocol): instances are eligible windowed repeats,
  /// candidates are the window items older than Omega.
  kRepeat,
  /// Novel-item recommendation (§4.3 extension): instances are out-of-window
  /// consumptions, candidates are every catalog item outside the window.
  kNovel,
  /// Unified next-item task (the paper's §6 future-work setting): every
  /// consumption is an instance and the whole catalog is the candidate set;
  /// used to evaluate repeat/novel mixtures.
  kUnified,
};

struct EvalOptions {
  int window_capacity = 100;     ///< |W|
  int min_gap = 10;              ///< Omega (kRepeat only)
  EvalTask task = EvalTask::kRepeat;
  std::vector<int> top_ns = {1, 5, 10};
  /// When true, accumulates wall-clock time of Score() calls so that
  /// mean_score_latency_ms is meaningful (Fig. 13).
  bool measure_latency = false;
  /// When true, AccuracyResult::per_user is populated (paired significance
  /// tests need the per-user precisions).
  bool collect_per_user = false;
  /// Evaluate users in parallel with this many threads. Requires the
  /// recommender to support Clone(); falls back to 1 thread otherwise.
  /// Aggregate metrics are identical to the serial run for deterministic
  /// recommenders (the Random baseline draws in a different order).
  int num_threads = 1;
  /// Optional gate: evaluate an instance only if this returns true (used by
  /// the STREC + TS-PPR combination, Table 5). Receives the user and the
  /// walker state W_{u,t-1}. Null = evaluate every eligible instance.
  std::function<bool(data::UserId, const window::WindowWalker&)>
      instance_filter;
  /// \brief Skip-and-account policy for users whose test window fails
  /// validation (e.g. a split point past the sequence end).
  ///
  /// false (the default): the first invalid user fails Evaluate with a
  /// Status. true: the user is skipped with a logged warning and counted in
  /// AccuracyResult::num_users_skipped; aggregate metrics cover the
  /// remaining users only.
  bool skip_invalid_users = false;
};

/// \brief Per-user tally (populated when EvalOptions::collect_per_user).
struct PerUserResult {
  data::UserId user = data::kInvalidUser;
  int64_t instances = 0;
  std::vector<int64_t> hits;  ///< parallel to AccuracyResult::top_ns

  /// P(u) at the cutoff index.
  double Precision(size_t cutoff_index) const {
    return instances > 0 ? static_cast<double>(hits.at(cutoff_index)) /
                               static_cast<double>(instances)
                         : 0.0;
  }
};

/// \brief Accuracy (and optional latency) of one recommender.
struct AccuracyResult {
  std::string method;
  std::vector<int> top_ns;
  std::vector<double> maap;  ///< parallel to top_ns (Eq. 23)
  std::vector<double> miap;  ///< parallel to top_ns (Eq. 24)
  int64_t num_instances = 0;       ///< recommendation lists generated
  int num_users_evaluated = 0;     ///< users with >= 1 instance
  /// Users dropped by EvalOptions::skip_invalid_users (0 when the policy is
  /// off — an invalid user then fails the whole evaluation instead).
  int num_users_skipped = 0;
  double mean_score_latency_ms = 0.0;
  double mean_candidates = 0.0;    ///< average candidate-set size
  /// One entry per evaluated user when EvalOptions::collect_per_user is set.
  std::vector<PerUserResult> per_user;

  /// Value lookup; dies if n was not evaluated.
  double MaapAt(int n) const;
  double MiapAt(int n) const;
};

/// \brief Runs the protocol over the test segments of a split.
class Evaluator {
 public:
  /// Validates a window configuration, in particular that the configured
  /// minimum train/test gap Omega is representable inside the window
  /// (0 <= min_gap < window_capacity — with gap >= |W| no candidate could
  /// ever satisfy Eq. 9 and the protocol would silently evaluate nothing).
  static Status ValidateOptions(const EvalOptions& options);

  /// Status-returning construction: rejects invalid window configurations
  /// instead of dying, so callers inside Result pipelines can propagate.
  static Result<Evaluator> Create(const data::TrainTestSplit* split,
                                  EvalOptions options);

  /// `split` must outlive the evaluator. Dies (RC_CHECK_OK) on a window
  /// configuration that ValidateOptions rejects; use Create to propagate.
  Evaluator(const data::TrainTestSplit* split, EvalOptions options);

  /// Evaluates one recommender over every user's test segment.
  Result<AccuracyResult> Evaluate(Recommender* recommender) const;

  const EvalOptions& options() const { return options_; }

 private:
  /// Walks one user's test segment into the (type-erased) Accumulator.
  /// Non-OK when the user's window fails validation (or the "eval/user"
  /// failpoint fires); the caller applies the skip_invalid_users policy.
  Status EvaluateUser(Recommender* recommender, data::UserId user,
                      void* accumulator_opaque) const;

  const data::TrainTestSplit* split_;
  EvalOptions options_;
};

}  // namespace eval
}  // namespace reconsume

