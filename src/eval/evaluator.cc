#include "eval/evaluator.h"

#include <algorithm>
#include <memory>
#include <string>

#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace reconsume {
namespace eval {

namespace {

size_t IndexOfTopN(const std::vector<int>& top_ns, int n) {
  for (size_t i = 0; i < top_ns.size(); ++i) {
    if (top_ns[i] == n) return i;
  }
  RECONSUME_CHECK(false) << "Top-" << n << " was not evaluated";
  return 0;
}

/// Everything one worker accumulates; merged after the parallel section.
struct Accumulator {
  std::vector<int64_t> global_hits;
  std::vector<double> miap_sums;
  int64_t total_instances = 0;
  int num_users_evaluated = 0;
  int num_users_skipped = 0;
  double total_candidates = 0.0;
  double total_latency_ms = 0.0;
  std::vector<PerUserResult> per_user;

  explicit Accumulator(size_t num_cutoffs)
      : global_hits(num_cutoffs, 0), miap_sums(num_cutoffs, 0.0) {}

  void Merge(const Accumulator& other) {
    for (size_t c = 0; c < global_hits.size(); ++c) {
      global_hits[c] += other.global_hits[c];
      miap_sums[c] += other.miap_sums[c];
    }
    total_instances += other.total_instances;
    num_users_evaluated += other.num_users_evaluated;
    num_users_skipped += other.num_users_skipped;
    total_candidates += other.total_candidates;
    total_latency_ms += other.total_latency_ms;
    per_user.insert(per_user.end(), other.per_user.begin(),
                    other.per_user.end());
  }
};

}  // namespace

double AccuracyResult::MaapAt(int n) const {
  return maap.at(IndexOfTopN(top_ns, n));
}
double AccuracyResult::MiapAt(int n) const {
  return miap.at(IndexOfTopN(top_ns, n));
}

Status Evaluator::ValidateOptions(const EvalOptions& options) {
  if (options.top_ns.empty()) {
    return Status::InvalidArgument("Evaluator: top_ns must be non-empty");
  }
  for (int n : options.top_ns) {
    if (n < 1) {
      return Status::InvalidArgument("Evaluator: top_ns entries must be >= 1");
    }
  }
  if (options.window_capacity < 2) {
    return Status::InvalidArgument("Evaluator: window_capacity must be >= 2");
  }
  if (options.min_gap < 0 || options.min_gap >= options.window_capacity) {
    return Status::InvalidArgument(
        "Evaluator: train/test gap must satisfy 0 <= Omega < |W|, got "
        "Omega=" + std::to_string(options.min_gap) +
        " |W|=" + std::to_string(options.window_capacity));
  }
  return Status::OK();
}

Result<Evaluator> Evaluator::Create(const data::TrainTestSplit* split,
                                    EvalOptions options) {
  if (split == nullptr) {
    return Status::InvalidArgument("Evaluator: null split");
  }
  RECONSUME_RETURN_NOT_OK(ValidateOptions(options));
  return Evaluator(split, std::move(options));
}

Evaluator::Evaluator(const data::TrainTestSplit* split, EvalOptions options)
    : split_(split), options_(std::move(options)) {
  RC_CHECK(split != nullptr);
  RC_CHECK_OK(ValidateOptions(options_));
}

Status Evaluator::EvaluateUser(Recommender* recommender, data::UserId user,
                               void* accumulator_opaque) const {
  RC_FAILPOINT("eval/user");
  Accumulator& accumulator = *static_cast<Accumulator*>(accumulator_opaque);
  const data::Dataset& dataset = split_->dataset();
  const size_t num_cutoffs = options_.top_ns.size();
  const auto& seq = dataset.sequence(user);
  const size_t test_begin = split_->split_point(user);
  if (test_begin > seq.size()) {
    return Status::InvalidArgument(
        "test window of user " + std::to_string(user) +
        " starts past its sequence (split point " +
        std::to_string(test_begin) + ", length " +
        std::to_string(seq.size()) + ")");
  }
  window::WindowWalker walker(&seq, options_.window_capacity);

  // Warm the window over the training segment without evaluating.
  while (static_cast<size_t>(walker.step()) < test_begin) walker.Advance();

  std::vector<data::ItemId> candidates;
  std::vector<double> scores;
  std::vector<int> top;
  int max_top_n = 0;
  for (int n : options_.top_ns) max_top_n = std::max(max_top_n, n);
  util::Stopwatch stopwatch;
  std::vector<int64_t> user_hits(num_cutoffs, 0);
  int64_t user_instances = 0;
  double user_latency_ms = 0.0;
  // Lock-free shards: safe to record from every evaluation worker.
  obs::Histogram* const user_score_hist =
      options_.measure_latency
          ? obs::MetricsRegistry::Global().GetHistogram(
                "eval.user_score_ms", obs::ExponentialBuckets(1e-3, 2.0, 26))
          : nullptr;

  while (!walker.Done()) {
    bool is_instance = false;
    switch (options_.task) {
      case EvalTask::kRepeat:
        is_instance = walker.NextIsEligibleRepeat(options_.min_gap);
        break;
      case EvalTask::kNovel:
        is_instance = walker.step() > 0 && !walker.NextIsRepeat();
        break;
      case EvalTask::kUnified:
        is_instance = walker.step() > 0;
        break;
    }
    if (is_instance && (!options_.instance_filter ||
                        options_.instance_filter(user, walker))) {
      const data::ItemId target = walker.NextItem();
      if (options_.task == EvalTask::kRepeat) {
        walker.EligibleCandidates(options_.min_gap, &candidates);
      } else {
        // Catalog-wide candidate set; kNovel excludes the window.
        candidates.clear();
        for (size_t v = 0; v < dataset.num_items(); ++v) {
          const data::ItemId item = static_cast<data::ItemId>(v);
          if (options_.task == EvalTask::kNovel && walker.Contains(item)) {
            continue;
          }
          candidates.push_back(item);
        }
      }
      // The target is eligible by construction, so candidates is non-empty.
      scores.assign(candidates.size(), 0.0);
      if (options_.measure_latency) stopwatch.Restart();
      recommender->Score(user, walker, candidates, scores);
      if (options_.measure_latency) {
        const double score_ms = stopwatch.ElapsedMillis();
        accumulator.total_latency_ms += score_ms;
        user_latency_ms += score_ms;
      }

      size_t target_index = candidates.size();
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i] == target) {
          target_index = i;
          break;
        }
      }
      if (target_index == candidates.size()) {
        return Status::Internal(
            "target item missing from the candidate set for user " +
            std::to_string(user) + " at step " +
            std::to_string(walker.step()));
      }
      // Rank of the target under (score desc, candidate order asc), via the
      // same bounded-heap partial selection the serving path uses: the
      // target's position in the top-max(N) list is exactly the number of
      // candidates preferred over it, and a target outside the list has
      // rank >= max(N), i.e. it misses every cutoff.
      SelectTopNHeap(scores, max_top_n, &top);
      size_t rank = static_cast<size_t>(max_top_n);
      for (size_t p = 0; p < top.size(); ++p) {
        if (static_cast<size_t>(top[p]) == target_index) {
          rank = p;
          break;
        }
      }

      for (size_t c = 0; c < num_cutoffs; ++c) {
        if (rank < static_cast<size_t>(options_.top_ns[c])) {
          ++user_hits[c];
        }
      }
      ++user_instances;
      accumulator.total_candidates += static_cast<double>(candidates.size());
    }
    walker.Advance();
  }

  if (user_instances > 0) {
    ++accumulator.num_users_evaluated;
    accumulator.total_instances += user_instances;
    obs::MetricsRegistry::Global()
        .GetCounter("eval.instances")
        ->Increment(user_instances);
    if (user_score_hist != nullptr) user_score_hist->Observe(user_latency_ms);
    for (size_t c = 0; c < num_cutoffs; ++c) {
      accumulator.global_hits[c] += user_hits[c];
      accumulator.miap_sums[c] += static_cast<double>(user_hits[c]) /
                                  static_cast<double>(user_instances);
    }
    if (options_.collect_per_user) {
      accumulator.per_user.push_back(
          PerUserResult{user, user_instances, user_hits});
    }
  }
  return Status::OK();
}

Result<AccuracyResult> Evaluator::Evaluate(Recommender* recommender) const {
  if (recommender == nullptr) {
    return Status::InvalidArgument("Evaluate: null recommender");
  }
  RC_TRACE_SPAN("eval/evaluate");
  const data::Dataset& dataset = split_->dataset();
  const size_t num_users = dataset.num_users();
  const size_t num_cutoffs = options_.top_ns.size();
  RC_EMIT_EVENT(obs::Event("eval_start")
                    .Set("method", std::string(recommender->name()))
                    .Set("num_users", static_cast<int64_t>(num_users))
                    .Set("num_threads", options_.num_threads)
                    .Set("window_capacity", options_.window_capacity)
                    .Set("min_gap", options_.min_gap));

  Accumulator total(num_cutoffs);

  const int want_threads =
      std::min<int>(options_.num_threads, static_cast<int>(num_users));
  bool parallel = want_threads > 1;
  std::vector<std::unique_ptr<Recommender>> clones;
  if (parallel) {
    for (int t = 0; t < want_threads; ++t) {
      auto clone = recommender->Clone();
      if (clone == nullptr) {
        parallel = false;  // method does not support cloning
        break;
      }
      clones.push_back(std::move(clone));
    }
  }

  // Applies the skip_invalid_users policy to one user's outcome: skips are
  // counted and logged, hard failures propagate out of Evaluate.
  auto evaluate_user = [this](Recommender* rec, data::UserId user,
                              Accumulator* accumulator) -> Status {
    const Status status = EvaluateUser(rec, user, accumulator);
    if (status.ok() || !options_.skip_invalid_users) return status;
    ++accumulator->num_users_skipped;
    obs::MetricsRegistry::Global()
        .GetCounter("eval.users_skipped")
        ->Increment();
    RECONSUME_LOG(Warning).With("user", static_cast<long long>(user))
        << "skipping user in evaluation: " << status.message();
    return Status::OK();
  };

  if (!parallel) {
    for (size_t u = 0; u < num_users; ++u) {
      RECONSUME_RETURN_NOT_OK(
          evaluate_user(recommender, static_cast<data::UserId>(u), &total));
    }
  } else {
    // Contiguous user chunks, one accumulator and clone per worker. Tasks
    // must not throw (ThreadPool contract): each worker parks its first
    // failure in its own Status slot and stops its chunk.
    const size_t num_workers = clones.size();
    std::vector<Accumulator> partials(num_workers, Accumulator(num_cutoffs));
    std::vector<Status> worker_status(num_workers);
    util::ThreadPool pool(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      pool.Submit([this, w, num_workers, num_users, &clones, &partials,
                   &worker_status, &evaluate_user] {
        const size_t begin = w * num_users / num_workers;
        const size_t end = (w + 1) * num_users / num_workers;
        for (size_t u = begin; u < end; ++u) {
          const Status status = evaluate_user(
              clones[w].get(), static_cast<data::UserId>(u), &partials[w]);
          if (!status.ok()) {
            worker_status[w] = status;
            break;
          }
        }
      });
    }
    pool.Wait();
    for (const Status& status : worker_status) {
      RECONSUME_RETURN_NOT_OK(status);
    }
    for (const Accumulator& partial : partials) total.Merge(partial);
  }

  AccuracyResult result;
  result.method = recommender->name();
  result.top_ns = options_.top_ns;
  result.maap.assign(num_cutoffs, 0.0);
  result.miap.assign(num_cutoffs, 0.0);
  result.num_instances = total.total_instances;
  result.num_users_evaluated = total.num_users_evaluated;
  result.num_users_skipped = total.num_users_skipped;
  if (total.total_instances > 0) {
    for (size_t c = 0; c < num_cutoffs; ++c) {
      result.maap[c] = static_cast<double>(total.global_hits[c]) /
                       static_cast<double>(total.total_instances);
    }
    result.mean_candidates =
        total.total_candidates / static_cast<double>(total.total_instances);
    result.mean_score_latency_ms =
        total.total_latency_ms / static_cast<double>(total.total_instances);
  }
  if (total.num_users_evaluated > 0) {
    for (size_t c = 0; c < num_cutoffs; ++c) {
      result.miap[c] = total.miap_sums[c] /
                       static_cast<double>(total.num_users_evaluated);
    }
  }
  // Eq. 22-24: every average precision is a probability.
  for (size_t c = 0; c < num_cutoffs; ++c) {
    RC_CHECK_PROB(result.maap[c]) << "MaAP@" << options_.top_ns[c];
    RC_CHECK_PROB(result.miap[c]) << "MiAP@" << options_.top_ns[c];
  }
  result.per_user = std::move(total.per_user);
  std::sort(result.per_user.begin(), result.per_user.end(),
            [](const PerUserResult& a, const PerUserResult& b) {
              return a.user < b.user;
            });
  if (obs::EventStream::Global().enabled()) {
    obs::Event event("eval_end");
    event.Set("method", std::string(recommender->name()))
        .Set("num_instances", result.num_instances)
        .Set("num_users_evaluated", result.num_users_evaluated)
        .Set("num_users_skipped", result.num_users_skipped)
        .Set("mean_score_latency_ms", result.mean_score_latency_ms);
    for (size_t c = 0; c < num_cutoffs; ++c) {
      const std::string n = std::to_string(options_.top_ns[c]);
      event.Set("maap@" + n, result.maap[c]).Set("miap@" + n, result.miap[c]);
    }
    obs::EventStream::Global().Emit(std::move(event));
  }
  return result;
}

}  // namespace eval
}  // namespace reconsume
