// Fixed-width text tables for the benchmark reports (Fig. 5/6 tables,
// sensitivity sweeps, Table 3/5).

#pragma once

#include <string>
#include <vector>

namespace reconsume {
namespace eval {

/// \brief Simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Adds a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Formats a double cell with the given precision.
  static std::string Cell(double value, int precision = 4);

  /// Renders with a header underline and 2-space column gaps.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eval
}  // namespace reconsume

