#include "eval/significance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace reconsume {
namespace eval {

namespace {

/// Standard normal two-sided tail probability via erfc.
double TwoSidedNormalP(double z) {
  const double p = std::erfc(std::fabs(z) / std::sqrt(2.0));
  RC_DCHECK_PROB(p);
  return p;
}

}  // namespace

double SignTestPValue(int wins, int trials) {
  if (trials <= 0) return 1.0;
  RECONSUME_CHECK(wins >= 0 && wins <= trials);
  // Two-sided exact binomial: P(X <= min(w, n-w)) + P(X >= max(w, n-w))
  // under X ~ Bin(n, 0.5). Computed in log space for large n.
  const int k = std::min(wins, trials - wins);
  auto log_choose = [](int n, int r) {
    return std::lgamma(n + 1.0) - std::lgamma(r + 1.0) -
           std::lgamma(n - r + 1.0);
  };
  double tail = 0.0;
  for (int i = 0; i <= k; ++i) {
    tail += std::exp(log_choose(trials, i) -
                     static_cast<double>(trials) * std::log(2.0));
  }
  // Symmetric distribution: double one tail, clamp for the w == n/2 overlap.
  return std::min(1.0, 2.0 * tail);
}

double WilcoxonSignedRankPValue(const std::vector<double>& differences) {
  std::vector<double> nonzero;
  nonzero.reserve(differences.size());
  for (double d : differences) {
    if (d != 0.0) nonzero.push_back(d);
  }
  const size_t n = nonzero.size();
  if (n < 10) return 1.0;  // normal approximation not credible below this

  // Rank |d| ascending with average ranks for ties.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::fabs(nonzero[a]) < std::fabs(nonzero[b]);
  });
  std::vector<double> ranks(n);
  double tie_correction = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && std::fabs(nonzero[order[j + 1]]) ==
                            std::fabs(nonzero[order[i]])) {
      ++j;
    }
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    const double t = static_cast<double>(j - i + 1);
    tie_correction += t * t * t - t;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }

  double w_plus = 0.0;
  for (size_t idx = 0; idx < n; ++idx) {
    if (nonzero[idx] > 0) w_plus += ranks[idx];
  }
  const double nd = static_cast<double>(n);
  const double mean = nd * (nd + 1.0) / 4.0;
  double variance = nd * (nd + 1.0) * (2.0 * nd + 1.0) / 24.0;
  variance -= tie_correction / 48.0;
  if (variance <= 0.0) return 1.0;
  // Continuity correction.
  const double z = (w_plus - mean - (w_plus > mean ? 0.5 : -0.5)) /
                   std::sqrt(variance);
  return TwoSidedNormalP(z);
}

Result<std::vector<PairedComparison>> ComparePaired(
    const data::TrainTestSplit& split, const EvalOptions& options,
    Recommender* method_a, Recommender* method_b) {
  if (method_a == nullptr || method_b == nullptr) {
    return Status::InvalidArgument("ComparePaired: null recommender");
  }
  EvalOptions per_user_options = options;
  per_user_options.collect_per_user = true;
  RECONSUME_ASSIGN_OR_RETURN(const Evaluator evaluator,
                             Evaluator::Create(&split, per_user_options));
  RECONSUME_ASSIGN_OR_RETURN(const AccuracyResult result_a,
                             evaluator.Evaluate(method_a));
  RECONSUME_ASSIGN_OR_RETURN(const AccuracyResult result_b,
                             evaluator.Evaluate(method_b));
  if (result_a.per_user.size() != result_b.per_user.size()) {
    return Status::Internal(
        "paired evaluation produced different user sets (protocol must be "
        "deterministic)");
  }

  std::vector<PairedComparison> comparisons;
  for (size_t c = 0; c < options.top_ns.size(); ++c) {
    PairedComparison comparison;
    comparison.method_a = result_a.method;
    comparison.method_b = result_b.method;
    comparison.top_n = options.top_ns[c];

    std::vector<double> differences;
    differences.reserve(result_a.per_user.size());
    for (size_t u = 0; u < result_a.per_user.size(); ++u) {
      const PerUserResult& a = result_a.per_user[u];
      const PerUserResult& b = result_b.per_user[u];
      if (a.user != b.user || a.instances != b.instances) {
        return Status::Internal("paired evaluation instance mismatch");
      }
      const double diff = a.Precision(c) - b.Precision(c);
      differences.push_back(diff);
      comparison.mean_difference += diff;
      if (diff > 0) {
        ++comparison.wins_a;
      } else if (diff < 0) {
        ++comparison.wins_b;
      } else {
        ++comparison.ties;
      }
    }
    comparison.num_users = static_cast<int>(result_a.per_user.size());
    if (comparison.num_users > 0) {
      comparison.mean_difference /= comparison.num_users;
    }
    comparison.sign_test_p = SignTestPValue(
        comparison.wins_a, comparison.wins_a + comparison.wins_b);
    comparison.wilcoxon_p = WilcoxonSignedRankPValue(differences);
    RC_CHECK_PROB(comparison.sign_test_p);
    RC_CHECK_PROB(comparison.wilcoxon_p);
    comparisons.push_back(std::move(comparison));
  }
  return comparisons;
}

}  // namespace eval
}  // namespace reconsume
