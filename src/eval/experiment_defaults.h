// Table 4 of the paper: default hyperparameter settings per dataset, plus
// the protocol constants shared by every experiment.

#pragma once

#include <string>

namespace reconsume {
namespace eval {

/// \brief Per-dataset default hyperparameters (Table 4).
struct ExperimentDefaults {
  std::string dataset_name;
  double lambda = 0.01;  ///< regularization on the mappings A_u
  double gamma = 0.05;   ///< regularization on U, V
  int latent_dim = 40;   ///< K
  int negatives = 10;    ///< S
  int min_gap = 10;      ///< Omega
  int window_capacity = 100;  ///< |W| (§5.1)
  double train_fraction = 0.7;
  int min_train_events = 100;  ///< keep users with 0.7|S_u| >= 100

  static ExperimentDefaults Gowalla() {
    ExperimentDefaults d;
    d.dataset_name = "Gowalla";
    d.lambda = 0.01;
    d.gamma = 0.05;
    return d;
  }

  static ExperimentDefaults Lastfm() {
    ExperimentDefaults d;
    d.dataset_name = "Lastfm";
    d.lambda = 0.001;
    d.gamma = 0.1;
    return d;
  }
};

}  // namespace eval
}  // namespace reconsume

