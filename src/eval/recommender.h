// The method-agnostic recommender interface that the evaluation protocol
// drives. TS-PPR (src/core) and every baseline (src/baselines) implement it.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/types.h"
#include "window/window_walker.h"

namespace reconsume {
namespace eval {

/// \brief A scorer over RRC candidate items.
///
/// `Score` receives the window state W_{u,t-1} (via the walker) and the
/// candidate set (items in the window with gap > Omega) and writes one
/// preference score per candidate; higher means more preferred. The
/// evaluator performs the top-N selection with deterministic tie-breaking,
/// so methods only express relative preference.
///
/// Score may mutate internal state (e.g. the Random baseline's RNG), hence
/// non-const.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Display name used in result tables ("TS-PPR", "Pop", ...).
  virtual std::string name() const = 0;

  virtual void Score(data::UserId user, const window::WindowWalker& walker,
                     std::span<const data::ItemId> candidates,
                     std::span<double> scores) = 0;

  /// An independent copy safe to call from another thread (model parameters
  /// may be shared through const pointers; mutable scratch must not be).
  /// Returns null when the method does not support cloning — the evaluator
  /// then falls back to single-threaded evaluation.
  virtual std::unique_ptr<Recommender> Clone() const { return nullptr; }
};

/// Writes the indices of the top-n scores into *top (descending score,
/// ascending candidate index on ties). n is clamped to candidates.size().
void SelectTopN(std::span<const double> scores, int n,
                std::vector<int>* top);

/// Identical output to SelectTopN, computed with a bounded min-heap:
/// O(m log n) comparisons and no O(m) index scratch, versus partial_sort's
/// O(m + n log m) over the full index range. Preferred on the serving path,
/// where n (a top-10 request) is tiny against m (the candidate window).
void SelectTopNHeap(std::span<const double> scores, int n,
                    std::vector<int>* top);

}  // namespace eval
}  // namespace reconsume

