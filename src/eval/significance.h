// Paired per-user significance testing between two recommenders.
//
// The paper reports point estimates only; for a credible reproduction the
// harness also answers "is the TS-PPR win real?" — both methods are evaluated
// on exactly the same instances, per-user precisions P(u) are paired, and a
// sign test plus a Wilcoxon signed-rank test (normal approximation) give
// p-values for the difference.

#pragma once

#include <string>
#include <vector>

#include "data/split.h"
#include "eval/evaluator.h"
#include "util/status.h"

namespace reconsume {
namespace eval {

/// \brief Paired comparison of two methods at one cutoff.
struct PairedComparison {
  std::string method_a;
  std::string method_b;
  int top_n = 0;
  int num_users = 0;       ///< users with >= 1 evaluated instance
  int wins_a = 0;          ///< users where P_a(u) > P_b(u)
  int wins_b = 0;
  int ties = 0;
  double mean_difference = 0.0;  ///< mean of P_a(u) - P_b(u)
  /// Two-sided sign-test p-value over the non-tied users (exact binomial).
  double sign_test_p = 1.0;
  /// Two-sided Wilcoxon signed-rank p-value (normal approximation with
  /// tie correction); 1.0 when fewer than 10 non-tied users.
  double wilcoxon_p = 1.0;
};

/// Evaluates both methods over the split's test segments with `options` and
/// pairs their per-user precisions at each cutoff in options.top_ns.
/// Both methods see identical instances (the protocol is deterministic).
Result<std::vector<PairedComparison>> ComparePaired(
    const data::TrainTestSplit& split, const EvalOptions& options,
    Recommender* method_a, Recommender* method_b);

/// Exact two-sided binomial sign-test p-value for `wins` successes out of
/// `trials` fair coin flips (exposed for tests).
double SignTestPValue(int wins, int trials);

/// Two-sided Wilcoxon signed-rank p-value via normal approximation for the
/// given paired differences (zeros dropped, average ranks for tied |d|).
double WilcoxonSignedRankPValue(const std::vector<double>& differences);

}  // namespace eval
}  // namespace reconsume

