#include "eval/table.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace reconsume {
namespace eval {

void TextTable::AddRow(std::vector<std::string> row) {
  RECONSUME_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

std::string TextTable::Cell(double value, int precision) {
  return util::StringPrintf("%.*f", precision, value);
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace eval
}  // namespace reconsume
