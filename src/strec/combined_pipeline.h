// The holistic STREC + TS-PPR pipeline of §5.7 (Table 5): STREC decides
// repeat-vs-novel at each step; TS-PPR recommends on the true repeats that
// STREC correctly identified; the joint accuracy is the product.

#pragma once

#include "core/ts_ppr.h"
#include "eval/evaluator.h"
#include "strec/strec_classifier.h"
#include "util/status.h"

namespace reconsume {
namespace strec {

/// \brief Table 5 rows: classifier accuracy, conditional recommendation
/// accuracy, and their product.
struct CombinedResult {
  StrecAccuracy classifier;
  eval::AccuracyResult conditional;  ///< TS-PPR on correctly-flagged repeats
  /// classifier.accuracy() * conditional.MaapAt(n).
  double JointMaapAt(int n) const {
    return classifier.accuracy() * conditional.MaapAt(n);
  }
};

/// Runs the combined evaluation: `classifier` gates which eligible repeat
/// instances `ts_ppr` is scored on (only those it flags as repeats — the
/// instances it classifies correctly, since the evaluator already restricts
/// to true repeats).
Result<CombinedResult> EvaluateCombined(const data::TrainTestSplit& split,
                                        const StrecClassifier& classifier,
                                        core::TsPpr* ts_ppr,
                                        const eval::EvalOptions& options);

}  // namespace strec
}  // namespace reconsume

