// Mixture of repeat-consumption and novel-item recommendation — the paper's
// stated future work (§6): "mix the results of recommendations for both
// novel consumption and repeat consumption".
//
// STREC supplies the mixing weight: at each moment, p = P(next is a repeat).
// The candidate set is partitioned into window items (repeat pool) and the
// rest (novel pool); each pool is ranked by its specialist recommender, and
// the pools are fused by weighted reciprocal rank:
//
//   fused(v) = p / (rank_within_pool(v) + k)        for window items
//   fused(v) = (1 - p) / (rank_within_pool(v) + k)  otherwise
//
// Rank fusion sidesteps the incomparability of raw scores across models.

#pragma once

#include <string>
#include <vector>

#include "eval/recommender.h"
#include "strec/strec_classifier.h"

namespace reconsume {
namespace strec {

/// \brief STREC-gated fusion of a repeat specialist and a novel specialist.
class MixtureRecommender : public eval::Recommender {
 public:
  /// All pointees must outlive this object. `rank_smoothing` is the k in the
  /// reciprocal-rank formula (RRF literature uses ~60 for web-scale lists;
  /// small candidate pools warrant a small k).
  MixtureRecommender(const StrecClassifier* classifier,
                     eval::Recommender* repeat_recommender,
                     eval::Recommender* novel_recommender,
                     double rank_smoothing = 3.0)
      : classifier_(classifier),
        repeat_(repeat_recommender),
        novel_(novel_recommender),
        rank_smoothing_(rank_smoothing) {
    RECONSUME_CHECK(classifier != nullptr && repeat_recommender != nullptr &&
                    novel_recommender != nullptr);
    RECONSUME_CHECK(rank_smoothing > 0);
  }

  std::string name() const override { return "Mixture(STREC)"; }

  /// Clones the specialists (which must themselves be clonable) and owns the
  /// copies; returns null if either specialist cannot clone.
  std::unique_ptr<eval::Recommender> Clone() const override {
    auto repeat_clone = repeat_->Clone();
    auto novel_clone = novel_->Clone();
    if (repeat_clone == nullptr || novel_clone == nullptr) return nullptr;
    auto clone = std::make_unique<MixtureRecommender>(
        classifier_, repeat_clone.get(), novel_clone.get(), rank_smoothing_);
    clone->owned_repeat_ = std::move(repeat_clone);
    clone->owned_novel_ = std::move(novel_clone);
    return clone;
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override;

 private:
  const StrecClassifier* classifier_;
  eval::Recommender* repeat_;
  eval::Recommender* novel_;
  double rank_smoothing_;
  // Set only on clones: keeps the cloned specialists alive.
  std::unique_ptr<eval::Recommender> owned_repeat_;
  std::unique_ptr<eval::Recommender> owned_novel_;

  // Reused scratch.
  std::vector<data::ItemId> pool_items_;
  std::vector<size_t> pool_positions_;
  std::vector<double> pool_scores_;
  std::vector<int> pool_order_;
};

}  // namespace strec
}  // namespace reconsume

