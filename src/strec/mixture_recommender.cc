#include "strec/mixture_recommender.h"

namespace reconsume {
namespace strec {

void MixtureRecommender::Score(data::UserId user,
                               const window::WindowWalker& walker,
                               std::span<const data::ItemId> candidates,
                               std::span<double> scores) {
  const double p_repeat = classifier_->PredictRepeatProbability(user, walker);

  // Two passes: pool = window items scored by the repeat specialist, then
  // everything else scored by the novel specialist.
  for (int pass = 0; pass < 2; ++pass) {
    const bool repeat_pool = pass == 0;
    pool_items_.clear();
    pool_positions_.clear();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (walker.Contains(candidates[i]) == repeat_pool) {
        pool_items_.push_back(candidates[i]);
        pool_positions_.push_back(i);
      }
    }
    if (pool_items_.empty()) continue;

    pool_scores_.assign(pool_items_.size(), 0.0);
    (repeat_pool ? repeat_ : novel_)
        ->Score(user, walker, pool_items_, pool_scores_);

    // Within-pool ranks -> weighted reciprocal-rank fusion.
    eval::SelectTopN(pool_scores_, static_cast<int>(pool_scores_.size()),
                     &pool_order_);
    const double weight = repeat_pool ? p_repeat : 1.0 - p_repeat;
    for (size_t rank = 0; rank < pool_order_.size(); ++rank) {
      const size_t original_index =
          pool_positions_[static_cast<size_t>(pool_order_[rank])];
      scores[original_index] =
          weight / (static_cast<double>(rank) + rank_smoothing_);
    }
  }
}

}  // namespace strec
}  // namespace reconsume
