#include "strec/strec_classifier.h"

#include <algorithm>

#include "util/logging.h"

namespace reconsume {
namespace strec {

namespace {

/// Fraction of the last `lookback` events that repeated an item from the
/// `capacity` events preceding them — the short-term repeat momentum signal.
/// O(lookback * capacity) per call; evaluated lazily at prediction time.
double RecentRepeatRate(const window::WindowWalker& walker, int lookback) {
  const auto& seq = walker.sequence();
  const int t = walker.step();
  const int capacity = walker.capacity();
  int repeats = 0, considered = 0;
  for (int p = std::max(1, t - lookback); p < t; ++p) {
    ++considered;
    const data::ItemId item = seq[static_cast<size_t>(p)];
    const int from = std::max(0, p - capacity);
    for (int q = from; q < p; ++q) {
      if (seq[static_cast<size_t>(q)] == item) {
        ++repeats;
        break;
      }
    }
  }
  return considered > 0
             ? static_cast<double>(repeats) / static_cast<double>(considered)
             : 0.0;
}

/// The four window-level features; `repeat_ratio` is the user's trait value.
std::vector<double> WindowFeatures(const window::WindowWalker& walker,
                                   const features::StaticFeatureTable& table,
                                   double repeat_ratio) {
  const int window_size = walker.WindowSize();
  double distinct_ratio = 0.0;
  double mean_ir = 0.0;
  double max_familiarity = 0.0;
  if (window_size > 0 && !walker.window_counts().empty()) {
    const double num_distinct =
        static_cast<double>(walker.NumDistinctInWindow());
    distinct_ratio = num_distinct / static_cast<double>(window_size);
    for (const auto& [item, entry] : walker.window_counts()) {
      mean_ir += table.reconsumption_ratio(item);
      max_familiarity =
          std::max(max_familiarity, static_cast<double>(entry.count) /
                                        static_cast<double>(window_size));
    }
    mean_ir /= num_distinct;
  }
  return {repeat_ratio, distinct_ratio, mean_ir, max_familiarity,
          RecentRepeatRate(walker, /*lookback=*/10)};
}

/// Appends all pairwise products x_i * x_j (i <= j) to the base features.
std::vector<double> QuadraticExpand(std::vector<double> base) {
  const size_t n = base.size();
  base.reserve(n + n * (n + 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) base.push_back(base[i] * base[j]);
  }
  return base;
}

}  // namespace

Result<StrecClassifier> StrecClassifier::Fit(
    const data::TrainTestSplit& split,
    const features::StaticFeatureTable* table, const StrecOptions& options) {
  if (table == nullptr) {
    return Status::InvalidArgument("STREC: null static feature table");
  }
  const data::Dataset& dataset = split.dataset();

  // Pass 1: per-user historical repeat ratio over the training segment.
  std::vector<double> repeat_ratio(dataset.num_users(), 0.0);
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(static_cast<data::UserId>(u));
    const size_t train_end = split.split_point(static_cast<data::UserId>(u));
    window::WindowWalker walker(&seq, options.window_capacity);
    int64_t repeats = 0, steps = 0;
    while (static_cast<size_t>(walker.step()) < train_end) {
      if (walker.step() > 0) {
        ++steps;
        if (walker.NextIsRepeat()) ++repeats;
      }
      walker.Advance();
    }
    repeat_ratio[u] = steps > 0 ? static_cast<double>(repeats) /
                                      static_cast<double>(steps)
                                : 0.0;
  }

  // Pass 2: training examples (skip the cold-start first step of each user).
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (size_t u = 0; u < dataset.num_users() && x.size() < options.max_examples;
       ++u) {
    const auto& seq = dataset.sequence(static_cast<data::UserId>(u));
    const size_t train_end = split.split_point(static_cast<data::UserId>(u));
    window::WindowWalker walker(&seq, options.window_capacity);
    while (static_cast<size_t>(walker.step()) < train_end &&
           x.size() < options.max_examples) {
      if (walker.step() > 0) {
        auto features = WindowFeatures(walker, *table, repeat_ratio[u]);
        if (options.quadratic) features = QuadraticExpand(std::move(features));
        x.push_back(std::move(features));
        y.push_back(walker.NextIsRepeat() ? 1 : 0);
      }
      walker.Advance();
    }
  }
  if (x.empty()) {
    return Status::FailedPrecondition("STREC: no training examples");
  }

  math::LassoLogisticOptions lasso;
  lasso.l1_penalty = options.l1_penalty;
  RECONSUME_ASSIGN_OR_RETURN(math::LassoLogisticModel model,
                             math::FitLassoLogistic(x, y, lasso));
  return StrecClassifier(table, std::move(repeat_ratio),
                         options.window_capacity, options.quadratic,
                         std::move(model));
}

std::vector<double> StrecClassifier::ExtractFeatures(
    data::UserId user, const window::WindowWalker& walker) const {
  auto features = WindowFeatures(
      walker, *table_, user_repeat_ratio_.at(static_cast<size_t>(user)));
  if (quadratic_) features = QuadraticExpand(std::move(features));
  return features;
}

double StrecClassifier::PredictRepeatProbability(
    data::UserId user, const window::WindowWalker& walker) const {
  return model_.PredictProbability(ExtractFeatures(user, walker));
}

StrecAccuracy StrecClassifier::EvaluateOnTest(
    const data::TrainTestSplit& split) const {
  StrecAccuracy result;
  const data::Dataset& dataset = split.dataset();
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const data::UserId user = static_cast<data::UserId>(u);
    const auto& seq = dataset.sequence(user);
    const size_t test_begin = split.split_point(user);
    window::WindowWalker walker(&seq, window_capacity_);
    while (static_cast<size_t>(walker.step()) < test_begin) walker.Advance();
    while (!walker.Done()) {
      const bool actual = walker.NextIsRepeat();
      const bool predicted = PredictRepeat(user, walker);
      ++result.num_instances;
      if (actual == predicted) ++result.correct;
      if (predicted && actual) ++result.true_positives;
      if (predicted && !actual) ++result.false_positives;
      if (!predicted && !actual) ++result.true_negatives;
      if (!predicted && actual) ++result.false_negatives;
      walker.Advance();
    }
  }
  return result;
}

}  // namespace strec
}  // namespace reconsume
