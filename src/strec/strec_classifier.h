// STREC — short-term reconsumption prediction (Chen et al., AAAI 2015,
// ref. [13]): a linear Lasso classifier deciding, at each step, whether the
// next consumption will repeat an item from the current window.
//
// The paper uses STREC as the upstream switch in the holistic experiment of
// §5.7 (Table 5): STREC classifies repeat-vs-novel; TS-PPR recommends on the
// instances STREC correctly flags as repeats.
//
// Five window-level behavioral features (all computable from the walker
// state plus training-time statics, so the classifier can gate evaluation
// instances through eval::EvalOptions::instance_filter):
//   1. the user's historical repeat ratio over the training segment
//   2. window distinctness ratio (#distinct / |W|, low = repetitive regime)
//   3. mean item-reconsumption ratio over distinct window items
//   4. max dynamic familiarity over distinct window items
//   5. recent repeat rate (fraction of the last 10 events that were repeats)

#pragma once

#include <string>
#include <vector>

#include "data/split.h"
#include "features/static_features.h"
#include "math/lasso_logistic.h"
#include "util/status.h"
#include "window/window_walker.h"

namespace reconsume {
namespace strec {

struct StrecOptions {
  int window_capacity = 100;
  double l1_penalty = 1e-4;
  /// Cap on training examples (one per training step; bound for huge traces).
  size_t max_examples = 500'000;
  /// The STREC paper's quadratic variant: expand the feature vector with all
  /// pairwise products before the Lasso fit (5 -> 20 features). The L1
  /// penalty then prunes the uninformative cross terms.
  bool quadratic = false;
};

/// \brief Classification quality on a test sweep.
struct StrecAccuracy {
  int64_t num_instances = 0;
  int64_t correct = 0;
  int64_t true_positives = 0;   ///< predicted repeat & was repeat
  int64_t false_positives = 0;
  int64_t true_negatives = 0;
  int64_t false_negatives = 0;
  double accuracy() const {
    return num_instances > 0
               ? static_cast<double>(correct) /
                     static_cast<double>(num_instances)
               : 0.0;
  }
};

/// \brief Fitted STREC linear model.
class StrecClassifier {
 public:
  /// Fits on the training segments. `table` must be computed on the same
  /// split and outlive the classifier.
  static Result<StrecClassifier> Fit(const data::TrainTestSplit& split,
                                     const features::StaticFeatureTable* table,
                                     const StrecOptions& options);

  /// Probability that the next consumption is a (windowed) repeat, given the
  /// walker state W_{u,t-1}.
  double PredictRepeatProbability(data::UserId user,
                                  const window::WindowWalker& walker) const;
  bool PredictRepeat(data::UserId user,
                     const window::WindowWalker& walker) const {
    return PredictRepeatProbability(user, walker) >= 0.5;
  }

  /// Sweeps the test segments, comparing predictions to ground truth.
  StrecAccuracy EvaluateOnTest(const data::TrainTestSplit& split) const;

  const math::LassoLogisticModel& model() const { return model_; }

  /// The four features at a state (exposed for tests and diagnostics).
  std::vector<double> ExtractFeatures(data::UserId user,
                                      const window::WindowWalker& walker) const;

 private:
  StrecClassifier(const features::StaticFeatureTable* table,
                  std::vector<double> user_repeat_ratio, int window_capacity,
                  bool quadratic, math::LassoLogisticModel model)
      : table_(table),
        user_repeat_ratio_(std::move(user_repeat_ratio)),
        window_capacity_(window_capacity),
        quadratic_(quadratic),
        model_(std::move(model)) {}

  const features::StaticFeatureTable* table_;
  std::vector<double> user_repeat_ratio_;  ///< per user, from training
  int window_capacity_;
  bool quadratic_ = false;
  math::LassoLogisticModel model_;
};

}  // namespace strec
}  // namespace reconsume

