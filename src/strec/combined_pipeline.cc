#include "strec/combined_pipeline.h"

namespace reconsume {
namespace strec {

Result<CombinedResult> EvaluateCombined(const data::TrainTestSplit& split,
                                        const StrecClassifier& classifier,
                                        core::TsPpr* ts_ppr,
                                        const eval::EvalOptions& options) {
  if (ts_ppr == nullptr) {
    return Status::InvalidArgument("EvaluateCombined: null TS-PPR");
  }
  CombinedResult result;
  result.classifier = classifier.EvaluateOnTest(split);

  eval::EvalOptions gated = options;
  gated.instance_filter = [&classifier](data::UserId user,
                                        const window::WindowWalker& walker) {
    return classifier.PredictRepeat(user, walker);
  };
  RECONSUME_ASSIGN_OR_RETURN(const eval::Evaluator evaluator,
                             eval::Evaluator::Create(&split, gated));
  RECONSUME_ASSIGN_OR_RETURN(result.conditional,
                             evaluator.Evaluate(ts_ppr->recommender()));
  return result;
}

}  // namespace strec
}  // namespace reconsume
