#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace reconsume {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back({'o'});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  RC_CHECK(!stack_.empty() && stack_.back().kind == 'o' && !pending_key_)
      << "EndObject outside an object";
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back({'a'});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  RC_CHECK(!stack_.empty() && stack_.back().kind == 'a')
      << "EndArray outside an array";
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  RC_CHECK(!stack_.empty() && stack_.back().kind == 'o' && !pending_key_)
      << "Key is only valid directly inside an object";
  if (stack_.back().has_value) out_ += ',';
  stack_.back().has_value = true;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string_view(value));
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::Take() && {
  RC_CHECK(stack_.empty() && !pending_key_)
      << "Take on an incomplete JSON document";
  return std::move(out_);
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    // Key already emitted the separator.
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    RC_CHECK(stack_.back().kind == 'a')
        << "object members need a Key before the value";
    if (stack_.back().has_value) out_ += ',';
    stack_.back().has_value = true;
  }
}

}  // namespace obs
}  // namespace reconsume
