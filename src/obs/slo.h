// Rolling-window SLO tracking with burn-rate alerting
// (docs/observability.md, "Request tracing"; the SRE-workbook multiwindow
// burn-rate idiom).
//
// One SloMonitor tracks one objective — "at least `objective` of events are
// good over the long window". Events land in per-second ring buckets;
// burn rate over a window is
//
//     burn = (bad / total) / (1 - objective)
//
// so burn 1.0 consumes the error budget exactly at the rate that exhausts
// it by the end of the window, and burn >> 1 is an incident. Burn is
// reported over a short and a long window (fast detection + low noise);
// when the short-window burn crosses `alert_burn_rate`, the monitor emits a
// rate-limited `slo_burn` event and mirrors both burns into gauges
// (`slo.<name>.burn_short` / `slo.<name>.burn_long`).
//
// Record() takes one mutex; burn recomputation happens only when the
// per-second bucket rotates, so the per-event cost is a lock + two adds.
// Timestamps default to obs::MonotonicNanos() but every entry point accepts
// an explicit clock for deterministic tests.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/sync.h"

namespace reconsume {
namespace obs {

class Gauge;

/// \brief One objective's tunables.
struct SloConfig {
  std::string name;             ///< gauge/event label, e.g. "availability"
  double objective = 0.999;     ///< target good fraction in (0, 1)
  int window_seconds = 300;     ///< long window (ring length)
  int short_window_seconds = 60;
  /// Short-window burn at/above which slo_burn events fire (<= 0 disables).
  double alert_burn_rate = 1.0;
};

/// \brief Point-in-time view for dashboards (`serve stats`, statusz).
struct SloSnapshot {
  std::string name;
  double objective = 0;
  int window_seconds = 0;
  int short_window_seconds = 0;
  int64_t good = 0;  ///< long-window totals
  int64_t bad = 0;
  double compliance = 1.0;  ///< good fraction over the long window (1 = idle)
  double burn_short = 0;
  double burn_long = 0;
  /// Error budget left over the long window: 1 - burn_long, floored at 0.
  double budget_remaining = 1.0;
};

/// Fixed-width text dashboard over a set of snapshots — the `serve stats`
/// SLO block. Returned (not printed): library code never writes to stdio.
std::string RenderSloDashboard(const std::vector<SloSnapshot>& snapshots);

/// \brief Rolling-window burn-rate monitor for one objective. Thread-safe.
class SloMonitor {
 public:
  explicit SloMonitor(SloConfig config);

  /// Records one event at `now_ns` (obs::MonotonicNanos() when negative).
  void Record(bool good, int64_t now_ns = -1);

  SloSnapshot snapshot(int64_t now_ns = -1) const;
  const SloConfig& config() const { return config_; }
  /// slo_burn events emitted so far (rate-limited to bucket rotations).
  int64_t alerts() const { return alerts_.load(std::memory_order_relaxed); }

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

 private:
  struct Bucket {
    int64_t second = -1;  ///< absolute second this bucket holds, -1 = empty
    int64_t good = 0;
    int64_t bad = 0;
  };

  /// Rotates the ring up to `second`, recomputing burn and alerting on each
  /// actual rotation. Requires mu_ held.
  void AdvanceTo(int64_t second) RC_REQUIRES(mu_);
  double BurnOver(int windows_seconds, int64_t now_second) const
      RC_REQUIRES(mu_);

  const SloConfig config_;
  Gauge* burn_short_gauge_;  ///< slo.<name>.burn_short
  Gauge* burn_long_gauge_;   ///< slo.<name>.burn_long
  mutable util::Mutex mu_;
  std::vector<Bucket> ring_ RC_GUARDED_BY(mu_);
  int64_t current_second_ RC_GUARDED_BY(mu_) = -1;
  bool alert_raised_ RC_GUARDED_BY(mu_) = false;  ///< edge-trigger latch
  std::atomic<int64_t> alerts_{0};
};

}  // namespace obs
}  // namespace reconsume
