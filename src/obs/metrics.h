// Pillar 1 of the observability layer (docs/observability.md): a process-wide
// registry of named counters, gauges, and fixed-bucket histograms.
//
// Recording is designed for hot-ish paths shared by Hogwild workers and the
// parallel evaluator: every mutable cell is sharded across kMetricShards
// cache-line-padded atomic slots, a thread writes only the slot derived from
// its thread-local shard index, and scrapes merge the shards. There are no
// locks on the record path, only relaxed atomics, so instrumented code stays
// TSan-clean and contention-free.
//
//   obs::Counter* steps = obs::MetricsRegistry::Global().GetCounter("trainer.steps");
//   steps->Increment(check_every);
//
//   obs::Histogram* ms = obs::MetricsRegistry::Global().GetHistogram(
//       "checkpoint.write_ms", obs::ExponentialBuckets(0.1, 2.0, 16));
//   ms->Observe(watch.ElapsedMillis());
//
// Naming convention: lowercase dotted "component.metric", with the unit as a
// trailing suffix (_ms, _us, _per_sec). See docs/observability.md.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

namespace reconsume {
namespace obs {

/// Number of per-thread shards behind every counter/histogram. A power of
/// two so the thread-slot modulo compiles to a mask.
inline constexpr int kMetricShards = 16;

namespace internal {
/// Stable per-thread shard index in [0, kMetricShards): threads are assigned
/// round-robin slots on first use, so a fixed worker pool spreads evenly.
int ShardIndex();

/// One cache line per shard so concurrent writers never false-share.
struct alignas(64) PaddedCount {
  std::atomic<int64_t> value{0};
};
}  // namespace internal

/// \brief Monotonic event count.
class Counter {
 public:
  void Increment(int64_t delta = 1);
  /// Merged value across shards (racy-exact: sums a relaxed snapshot).
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::array<internal::PaddedCount, kMetricShards> shards_;
};

/// \brief Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value);
  double Value() const;

 private:
  friend class MetricsRegistry;
  Gauge();
  std::atomic<uint64_t> bits_;
};

/// \brief Merged read-side view of a Histogram.
struct HistogramSnapshot {
  /// Upper bounds of the finite buckets, ascending. counts has one extra
  /// trailing entry for the overflow bucket (> bounds.back()). A value v
  /// lands in the first bucket with v <= bounds[i].
  std::vector<double> bounds;
  std::vector<int64_t> counts;
  /// Per-bucket exemplar: trace id of the most recent observation that
  /// landed in the bucket with a non-zero trace attached (0 = none). Links
  /// a latency bucket straight to a retained trace (docs/observability.md,
  /// "Request tracing"). Parallel to `counts`.
  std::vector<uint64_t> exemplars;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;

  double Mean() const;
  /// Linear-interpolated quantile estimate from the bucket counts; exact at
  /// the recorded min/max. q in [0, 1].
  double Quantile(double q) const;
};

/// \brief Fixed-bucket histogram with lock-free sharded recording.
class Histogram {
 public:
  /// NaN observations are dropped (a poisoned measurement must not poison
  /// min/max/sum); +/-inf land in the overflow/first bucket.
  void Observe(double value);
  /// Observe() plus an exemplar: when `exemplar_trace_id` is non-zero it is
  /// stored (last write wins) as the bucket's exemplar, linking the metric
  /// to a trace. Still lock-free; pass only *retained* trace ids, or the
  /// exemplar will point at a trace the export filtered away.
  void Observe(double value, uint64_t exemplar_trace_id);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<int64_t>[]> buckets;  // bounds.size() + 1
    std::atomic<int64_t> count{0};
    std::atomic<uint64_t> sum_bits;
    std::atomic<uint64_t> min_bits;
    std::atomic<uint64_t> max_bits;
  };

  size_t BucketIndex(double value) const;

  std::vector<double> bounds_;
  std::unique_ptr<Shard[]> shards_;
  /// Unsharded on purpose: "most recent exemplar per bucket" is a
  /// last-write-wins cell, so a single relaxed store is the exact semantic.
  std::unique_ptr<std::atomic<uint64_t>[]> exemplars_;  // bounds.size() + 1
};

/// `count` buckets of uniform `width` starting at `start`:
/// start+width, start+2*width, ...
std::vector<double> LinearBuckets(double start, double width, int count);
/// `count` bounds growing geometrically from `start` by `factor` (> 1).
std::vector<double> ExponentialBuckets(double start, double factor, int count);

/// \brief Process-wide metric registry. Thread-safe; metric objects returned
/// by Get* stay valid until Reset().
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Finds or creates. The returned pointer is stable and never null.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` (ascending, non-empty) is used only when the histogram does
  /// not exist yet; later calls with the same name ignore it.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  /// Full scrape: {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// with names in sorted order (deterministic golden-file output).
  std::string ToJson() const;
  /// One line per metric, "name value ..." — the human-readable summary.
  std::string ToText() const;

  /// Drops every registered metric (invalidates outstanding pointers).
  /// Test-only; production code registers once and never resets.
  void Reset();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      RC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ RC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      RC_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace reconsume
