#include "obs/telemetry.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"
#include "obs/tail_sampler.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/fileio.h"

namespace reconsume {
namespace obs {

Result<TelemetryConfig> TelemetryConfigFromFlags(const util::FlagSet& flags) {
  TelemetryConfig config;
  RECONSUME_ASSIGN_OR_RETURN(config.metrics_path,
                             flags.GetString("metrics-out", ""));
  RECONSUME_ASSIGN_OR_RETURN(config.trace_path,
                             flags.GetString("trace-out", ""));
  RECONSUME_ASSIGN_OR_RETURN(config.events_path,
                             flags.GetString("events-out", ""));
  RECONSUME_ASSIGN_OR_RETURN(config.progress_every_sec,
                             flags.GetDouble("progress-every", 0.0));
  if (config.progress_every_sec < 0) {
    return Status::InvalidArgument("--progress-every must be >= 0 seconds");
  }
  return config;
}

ProgressReporter::ProgressReporter(double interval_sec)
    : interval_ns_(static_cast<int64_t>(interval_sec * 1e9)) {}

void ProgressReporter::Emit(const Event& event) {
  // *_end events always print; everything else is rate-limited.
  const bool is_final = event.type().size() >= 4 &&
                        event.type().compare(event.type().size() - 4, 4,
                                             "_end") == 0;
  if (!is_final && last_print_ns_ >= 0 &&
      event.t_ns - last_print_ns_ < interval_ns_) {
    return;
  }
  last_print_ns_ = event.t_ns;
  std::string line = "[telemetry " + event.type() + "]";
  int printed = 0;
  for (const Event::Field& field : event.fields()) {
    if (++printed > 8) {
      line += " ...";
      break;
    }
    line += ' ';
    line += field.key;
    line += '=';
    char buf[64];
    switch (field.kind) {
      case Event::Field::Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(field.i));
        line += buf;
        break;
      case Event::Field::Kind::kDouble:
        std::snprintf(buf, sizeof(buf), "%.4g", field.d);
        line += buf;
        break;
      case Event::Field::Kind::kString:
        line += field.s;
        break;
      case Event::Field::Kind::kBool:
        line += field.b ? "true" : "false";
        break;
    }
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

Result<TelemetrySession> TelemetrySession::Start(TelemetryConfig config) {
  TelemetrySession session;
  session.config_ = config;
  if (!config.any()) return session;  // inactive: nothing attached

  if (!config.events_path.empty()) {
    session.jsonl_ = std::make_unique<JsonlFileSink>(config.events_path);
    EventStream::Global().Attach(session.jsonl_.get());
  }
  if (config.progress_every_sec > 0) {
    session.progress_ =
        std::make_unique<ProgressReporter>(config.progress_every_sec);
    EventStream::Global().Attach(session.progress_.get());
  }
  if (!config.trace_path.empty()) {
    TraceRecorder::Global().Clear();
    // Forget tail-sampling verdicts from any earlier run in this process:
    // stale retained/dropped sets would filter the fresh trace wrongly.
    TraceTailSampler::Global().Clear();
    TraceRecorder::Global().Enable();
  }
  // Surface failpoint trips (docs/robustness.md) in the telemetry stream.
  util::FailpointRegistry::Global().SetFireListener(
      [](const char* name, int64_t fires) {
        MetricsRegistry::Global().GetCounter("failpoint.fires")->Increment();
        RC_EMIT_EVENT(
            Event("failpoint_fired").Set("name", name).Set("fires", fires));
      });
  session.active_ = true;
  return session;
}

TelemetrySession::TelemetrySession(TelemetrySession&& other) noexcept
    : config_(std::move(other.config_)),
      jsonl_(std::move(other.jsonl_)),
      progress_(std::move(other.progress_)),
      active_(other.active_) {
  other.active_ = false;
}

TelemetrySession& TelemetrySession::operator=(
    TelemetrySession&& other) noexcept {
  if (this != &other) {
    Finish();
    config_ = std::move(other.config_);
    jsonl_ = std::move(other.jsonl_);
    progress_ = std::move(other.progress_);
    active_ = other.active_;
    other.active_ = false;
  }
  return *this;
}

TelemetrySession::~TelemetrySession() { Finish(); }

Status TelemetrySession::Finish() {
  if (!active_) return Status::OK();
  active_ = false;
  util::FailpointRegistry::Global().SetFireListener(nullptr);

  Status first = Status::OK();
  auto note = [&first](const Status& status) {
    if (first.ok() && !status.ok()) first = status;
  };

  if (jsonl_ != nullptr) {
    EventStream::Global().Detach(jsonl_.get());
    note(jsonl_->Flush());
    jsonl_.reset();
  }
  if (progress_ != nullptr) {
    EventStream::Global().Detach(progress_.get());
    progress_.reset();
  }
  if (!config_.trace_path.empty()) {
    TraceRecorder::Global().Disable();
    note(TraceRecorder::Global().WriteChromeTrace(config_.trace_path));
  }
  if (!config_.metrics_path.empty()) {
    note(util::AtomicWriteFile(config_.metrics_path,
                               MetricsRegistry::Global().ToJson()));
  }
  return first;
}

}  // namespace obs
}  // namespace reconsume
