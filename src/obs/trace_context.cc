#include "obs/trace_context.h"

#include <atomic>

namespace reconsume {
namespace obs {

namespace {

// Separate counters so span ids stay dense even when traces are sparse.
// Both start at 1: id 0 is reserved for "none" everywhere.
std::atomic<uint64_t> next_trace_id{1};
std::atomic<uint64_t> next_span_id{1};

TraceContext& ThreadCurrent() {
  thread_local TraceContext current;
  return current;
}

}  // namespace

uint64_t NextSpanId() {
  return next_span_id.fetch_add(1, std::memory_order_relaxed);
}

TraceContext MintTraceContext() {
  TraceContext context;
  context.trace_id = next_trace_id.fetch_add(1, std::memory_order_relaxed);
  context.span_id = NextSpanId();
  context.parent_span_id = 0;
  return context;
}

const TraceContext& CurrentTraceContext() { return ThreadCurrent(); }

TraceContext ExchangeCurrentTraceContext(const TraceContext& context) {
  TraceContext& current = ThreadCurrent();
  const TraceContext saved = current;
  current = context;
  return saved;
}

}  // namespace obs
}  // namespace reconsume
