// Tail-based trace sampling (docs/observability.md, "Request tracing").
//
// Head sampling decides before a request runs and therefore keeps a blind
// random slice; tail sampling decides *after the outcome is known*, so the
// interesting traces survive by construction:
//
//   * forced    — degraded / shed / deadline-exceeded / errored requests are
//                 always retained (the traces you debug an incident with),
//   * slow      — requests at or above the rolling p99 of recent latencies
//                 are retained (the tail the serve histogram reports),
//   * sampled   — a deterministic 1-in-N slice of ordinary fast requests is
//                 retained for baseline comparison (`sample_rate`).
//
// Everything else is dropped: TraceRecorder::ToChromeTraceJson consults the
// sampler at export time and omits dropped traces, and the per-thread span
// buffers compact dropped traces away when they grow past a soft cap, so a
// long-running instrumented service is bounded by the *retained* set, not
// by total traffic.
//
// The sampler is process-global (like the recorder it filters). When it was
// never enabled, every trace exports — the pre-sampling behaviour.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "util/sync.h"

namespace reconsume {
namespace obs {

/// \brief Tail-sampling policy knobs.
struct TailSamplerConfig {
  /// Fraction of ordinary (fast, successful) requests to retain, in [0, 1].
  /// Retention is deterministic (every k-th ordinary request), not random.
  double sample_rate = 0.0;
  /// Rolling latency window feeding the slow-outlier threshold.
  size_t latency_window = 1024;
  /// Quantile of the rolling window at/above which a request is "slow".
  double slow_quantile = 0.99;
  /// Observations required before the slow threshold engages (a cold p99
  /// over three samples would retain everything).
  size_t min_slow_observations = 100;
  /// Retained / dropped trace-id rings: oldest entries fall off first. A
  /// dropped id evicted early merely skips compaction (spans linger until
  /// export filtering); a retained id evicted early would break the
  /// trace-integrity contract, so keep this comfortably above the number of
  /// retained traces a run can produce.
  size_t retained_capacity = 1 << 16;
  size_t dropped_capacity = 1 << 16;
};

/// Why a trace was retained (telemetry labels).
enum class TailSampleVerdict { kDropped = 0, kForced, kSlow, kSampled };
const char* TailSampleVerdictName(TailSampleVerdict verdict);

/// \brief Racy-exact counters for stats output.
struct TailSamplerStats {
  int64_t considered = 0;
  int64_t retained_forced = 0;
  int64_t retained_slow = 0;
  int64_t retained_sampled = 0;
  int64_t dropped = 0;
  int64_t retained() const {
    return retained_forced + retained_slow + retained_sampled;
  }
};

/// \brief Process-wide tail sampler. Thread-safe; one mutex, taken once per
/// *finished traced request* (not per span), so it is far off the span
/// record path.
class TraceTailSampler {
 public:
  static TraceTailSampler& Global();

  /// Arms the sampler (idempotent; reconfigures in place). Decisions made
  /// before a reconfigure keep their verdicts.
  void Enable(const TailSamplerConfig& config);
  /// Stops influencing new decisions; existing verdicts still filter the
  /// export. Clear() to forget those too.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// True once any decision has been recorded — the export-time filter
  /// applies iff active, so runs that never sampled export everything.
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Decides retention for a finished request. `always_keep` marks the
  /// forced class (degraded / shed / deadline / error). Returns the verdict;
  /// anything but kDropped means the trace's spans survive export. When the
  /// sampler is disabled this records nothing and returns kSampled (treat
  /// everything as retained).
  TailSampleVerdict RecordOutcome(uint64_t trace_id, double latency_us,
                                  bool always_keep);

  bool IsRetained(uint64_t trace_id) const;
  bool IsDropped(uint64_t trace_id) const;

  TailSamplerStats stats() const;
  /// Current slow-retention threshold in microseconds (+inf while the
  /// rolling window is still below min_slow_observations).
  double slow_threshold_us() const;

  /// Forgets every decision and counter (test / run-boundary reset).
  void Clear();

  TraceTailSampler() = default;
  TraceTailSampler(const TraceTailSampler&) = delete;
  TraceTailSampler& operator=(const TraceTailSampler&) = delete;

 private:
  void Remember(uint64_t trace_id, std::unordered_set<uint64_t>* set,
                std::deque<uint64_t>* order, size_t capacity)
      RC_REQUIRES(mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> active_{false};
  mutable util::Mutex mu_;
  TailSamplerConfig config_ RC_GUARDED_BY(mu_);
  std::vector<double> latency_ring_ RC_GUARDED_BY(mu_);
  size_t latency_next_ RC_GUARDED_BY(mu_) = 0;
  size_t latency_seen_ RC_GUARDED_BY(mu_) = 0;
  double slow_threshold_us_ RC_GUARDED_BY(mu_) = 0;
  bool threshold_valid_ RC_GUARDED_BY(mu_) = false;
  int64_t ordinary_seen_ RC_GUARDED_BY(mu_) = 0;
  int64_t ordinary_kept_ RC_GUARDED_BY(mu_) = 0;
  std::unordered_set<uint64_t> retained_ RC_GUARDED_BY(mu_);
  std::deque<uint64_t> retained_order_ RC_GUARDED_BY(mu_);
  std::unordered_set<uint64_t> dropped_ RC_GUARDED_BY(mu_);
  std::deque<uint64_t> dropped_order_ RC_GUARDED_BY(mu_);
  TailSamplerStats stats_ RC_GUARDED_BY(mu_);
};

/// Parses the RECONSUME_TRACE_SAMPLE environment variable as a sample rate.
/// Returns `fallback` when unset or unparsable; the CLI/bench --trace-sample
/// flag overrides it.
double TraceSampleRateFromEnv(double fallback);

}  // namespace obs
}  // namespace reconsume
