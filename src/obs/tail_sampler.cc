#include "obs/tail_sampler.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace reconsume {
namespace obs {

namespace {
/// Recompute the slow threshold every this many window inserts: nth_element
/// over the ring is O(window), so amortize it instead of paying per request.
constexpr size_t kThresholdRefreshEvery = 128;
}  // namespace

const char* TailSampleVerdictName(TailSampleVerdict verdict) {
  switch (verdict) {
    case TailSampleVerdict::kDropped:
      return "dropped";
    case TailSampleVerdict::kForced:
      return "forced";
    case TailSampleVerdict::kSlow:
      return "slow";
    case TailSampleVerdict::kSampled:
      return "sampled";
  }
  return "unknown";
}

TraceTailSampler& TraceTailSampler::Global() {
  static TraceTailSampler* sampler = new TraceTailSampler();
  return *sampler;
}

void TraceTailSampler::Enable(const TailSamplerConfig& config) {
  util::MutexLock lock(&mu_);
  const double previous_rate = config_.sample_rate;
  config_ = config;
  config_.sample_rate = std::clamp(config.sample_rate, 0.0, 1.0);
  // Reconfiguring the rate restarts the deterministic 1-in-N pacing;
  // otherwise a high-rate phase leaves kept >> rate * seen and a following
  // low-rate phase samples nothing until seen catches up.
  if (config_.sample_rate != previous_rate) {
    ordinary_seen_ = 0;
    ordinary_kept_ = 0;
  }
  config_.latency_window = std::max<size_t>(config.latency_window, 8);
  config_.slow_quantile = std::clamp(config.slow_quantile, 0.0, 1.0);
  if (latency_ring_.size() != config_.latency_window) {
    latency_ring_.assign(config_.latency_window, 0.0);
    latency_next_ = 0;
    latency_seen_ = 0;
    threshold_valid_ = false;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceTailSampler::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceTailSampler::Remember(uint64_t trace_id,
                                std::unordered_set<uint64_t>* set,
                                std::deque<uint64_t>* order,
                                size_t capacity) {
  if (set->insert(trace_id).second) {
    order->push_back(trace_id);
    while (order->size() > std::max<size_t>(capacity, 1)) {
      set->erase(order->front());
      order->pop_front();
    }
  }
}

TailSampleVerdict TraceTailSampler::RecordOutcome(uint64_t trace_id,
                                                  double latency_us,
                                                  bool always_keep) {
  if (!enabled()) return TailSampleVerdict::kSampled;
  util::MutexLock lock(&mu_);
  active_.store(true, std::memory_order_relaxed);
  ++stats_.considered;

  // Every finished request feeds the rolling latency window, retained or
  // not — the p99 threshold must describe the traffic, not the sample.
  if (std::isfinite(latency_us)) {
    latency_ring_[latency_next_] = latency_us;
    latency_next_ = (latency_next_ + 1) % latency_ring_.size();
    ++latency_seen_;
    if (latency_seen_ >= config_.min_slow_observations &&
        (!threshold_valid_ || latency_seen_ % kThresholdRefreshEvery == 0)) {
      const size_t filled = std::min(latency_seen_, latency_ring_.size());
      std::vector<double> window(latency_ring_.begin(),
                                 latency_ring_.begin() +
                                     static_cast<std::ptrdiff_t>(filled));
      const size_t rank = std::min(
          filled - 1, static_cast<size_t>(config_.slow_quantile *
                                          static_cast<double>(filled)));
      std::nth_element(window.begin(),
                       window.begin() + static_cast<std::ptrdiff_t>(rank),
                       window.end());
      slow_threshold_us_ = window[rank];
      threshold_valid_ = true;
    }
  }

  TailSampleVerdict verdict = TailSampleVerdict::kDropped;
  if (always_keep) {
    verdict = TailSampleVerdict::kForced;
    ++stats_.retained_forced;
  } else if (threshold_valid_ && latency_us >= slow_threshold_us_) {
    verdict = TailSampleVerdict::kSlow;
    ++stats_.retained_slow;
  } else {
    // Deterministic 1-in-N: keep whenever the running kept count falls
    // behind seen * rate. rate 1.0 keeps everything, 0.0 nothing.
    ++ordinary_seen_;
    const double target =
        config_.sample_rate * static_cast<double>(ordinary_seen_);
    if (static_cast<double>(ordinary_kept_) < target) {
      ++ordinary_kept_;
      verdict = TailSampleVerdict::kSampled;
      ++stats_.retained_sampled;
    }
  }

  if (verdict == TailSampleVerdict::kDropped) {
    ++stats_.dropped;
    Remember(trace_id, &dropped_, &dropped_order_, config_.dropped_capacity);
  } else {
    Remember(trace_id, &retained_, &retained_order_,
             config_.retained_capacity);
  }
  return verdict;
}

bool TraceTailSampler::IsRetained(uint64_t trace_id) const {
  util::MutexLock lock(&mu_);
  return retained_.count(trace_id) > 0;
}

bool TraceTailSampler::IsDropped(uint64_t trace_id) const {
  util::MutexLock lock(&mu_);
  return dropped_.count(trace_id) > 0;
}

TailSamplerStats TraceTailSampler::stats() const {
  util::MutexLock lock(&mu_);
  return stats_;
}

double TraceTailSampler::slow_threshold_us() const {
  util::MutexLock lock(&mu_);
  return threshold_valid_ ? slow_threshold_us_
                          : std::numeric_limits<double>::infinity();
}

void TraceTailSampler::Clear() {
  util::MutexLock lock(&mu_);
  active_.store(false, std::memory_order_relaxed);
  latency_ring_.assign(std::max<size_t>(config_.latency_window, 8), 0.0);
  latency_next_ = 0;
  latency_seen_ = 0;
  slow_threshold_us_ = 0;
  threshold_valid_ = false;
  ordinary_seen_ = 0;
  ordinary_kept_ = 0;
  retained_.clear();
  retained_order_.clear();
  dropped_.clear();
  dropped_order_.clear();
  stats_ = TailSamplerStats();
}

double TraceSampleRateFromEnv(double fallback) {
  const char* env = std::getenv("RECONSUME_TRACE_SAMPLE");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double rate = std::strtod(env, &end);
  if (end == env || !std::isfinite(rate)) return fallback;
  return rate;
}

}  // namespace obs
}  // namespace reconsume
