#include "obs/event.h"

#include <algorithm>

#include "obs/json_writer.h"
#include "obs/trace.h"
#include "util/fileio.h"

namespace reconsume {
namespace obs {

Event& Event::Set(std::string key, int64_t value) {
  Field field;
  field.key = std::move(key);
  field.kind = Field::Kind::kInt;
  field.i = value;
  fields_.push_back(std::move(field));
  return *this;
}

Event& Event::Set(std::string key, double value) {
  Field field;
  field.key = std::move(key);
  field.kind = Field::Kind::kDouble;
  field.d = value;
  fields_.push_back(std::move(field));
  return *this;
}

Event& Event::Set(std::string key, std::string value) {
  Field field;
  field.key = std::move(key);
  field.kind = Field::Kind::kString;
  field.s = std::move(value);
  fields_.push_back(std::move(field));
  return *this;
}

Event& Event::Set(std::string key, bool value) {
  Field field;
  field.key = std::move(key);
  field.kind = Field::Kind::kBool;
  field.b = value;
  fields_.push_back(std::move(field));
  return *this;
}

const Event::Field* Event::Find(std::string_view key) const {
  for (const Field& field : fields_) {
    if (field.key == key) return &field;
  }
  return nullptr;
}

double Event::Number(std::string_view key, double fallback) const {
  const Field* field = Find(key);
  if (field == nullptr) return fallback;
  switch (field->kind) {
    case Field::Kind::kInt:
      return static_cast<double>(field->i);
    case Field::Kind::kDouble:
      return field->d;
    case Field::Kind::kBool:
      return field->b ? 1.0 : 0.0;
    case Field::Kind::kString:
      return fallback;
  }
  return fallback;
}

std::string Event::ToJsonLine() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").Value(type_);
  w.Key("seq").Value(seq);
  w.Key("t_ns").Value(t_ns);
  w.Key("tid").Value(tid);
  for (const Field& field : fields_) {
    w.Key(field.key);
    switch (field.kind) {
      case Field::Kind::kInt:
        w.Value(field.i);
        break;
      case Field::Kind::kDouble:
        w.Value(field.d);
        break;
      case Field::Kind::kString:
        w.Value(field.s);
        break;
      case Field::Kind::kBool:
        w.Value(field.b);
        break;
    }
  }
  w.EndObject();
  return std::move(w).Take();
}

void CaptureSink::Emit(const Event& event) {
  util::MutexLock lock(&mu_);
  events_.push_back(event);
}

std::vector<Event> CaptureSink::events() const {
  util::MutexLock lock(&mu_);
  return events_;
}

void CaptureSink::Clear() {
  util::MutexLock lock(&mu_);
  events_.clear();
}

JsonlFileSink::~JsonlFileSink() {
  Flush();  // best effort; an explicit Flush reports errors
}

void JsonlFileSink::Emit(const Event& event) {
  util::MutexLock lock(&mu_);
  buffer_ += event.ToJsonLine();
  buffer_ += '\n';
  dirty_ = true;
}

Status JsonlFileSink::Flush() {
  util::MutexLock lock(&mu_);
  if (!dirty_) return Status::OK();
  RECONSUME_RETURN_NOT_OK(util::AtomicWriteFile(path_, buffer_));
  dirty_ = false;
  return Status::OK();
}

EventStream& EventStream::Global() {
  static EventStream* stream = new EventStream();
  return *stream;
}

void EventStream::Attach(EventSink* sink) {
  util::MutexLock lock(&mu_);
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
  }
  enabled_.store(!sinks_.empty(), std::memory_order_relaxed);
}

void EventStream::Detach(EventSink* sink) {
  // Taking emit_mu_ first (the same order Emit uses) makes Detach a drain
  // barrier: once it returns, no emission can still be calling into `sink`.
  util::MutexLock emit_lock(&emit_mu_);
  util::MutexLock lock(&mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  enabled_.store(!sinks_.empty(), std::memory_order_relaxed);
}

void EventStream::Emit(Event event) {
  // Sample clock and thread id before touching any stream lock: ThisThreadLog
  // takes the trace recorder's registration lock, and nesting that inside the
  // stream's locks would couple the two subsystems' lock orders.
  if (event.t_ns < 0) event.t_ns = MonotonicNanos();
  if (event.tid < 0) event.tid = TraceRecorder::Global().ThisThreadLog()->tid;
  util::MutexLock emit_lock(&emit_mu_);
  std::vector<EventSink*> sinks;
  {
    util::MutexLock lock(&mu_);
    if (sinks_.empty()) return;
    sinks = sinks_;
  }
  if (event.seq < 0) event.seq = next_seq_++;
  // Fan out while holding only emit_mu_ (serialization), never mu_ — sinks
  // are free to log or attach/detach other sinks from their callback.
  for (EventSink* sink : sinks) sink->Emit(event);
}

Status EventStream::Flush() {
  std::vector<EventSink*> sinks;
  {
    util::MutexLock lock(&mu_);
    sinks = sinks_;
  }
  Status first = Status::OK();
  for (EventSink* sink : sinks) {
    const Status status = sink->Flush();
    if (first.ok() && !status.ok()) first = status;
  }
  return first;
}

}  // namespace obs
}  // namespace reconsume
