// Pillar 2 of the observability layer (docs/observability.md): scoped trace
// spans with thread attribution, exported as Chrome-tracing / Perfetto JSON.
//
//   {
//     RC_TRACE_SPAN("train");
//     ...                      // nested spans from any thread attach here
//   }                          // span closes when the scope exits
//
// Request-scoped stitching (docs/observability.md, "Request tracing"): a
// span may additionally belong to a trace — a TraceContext minted where a
// request is born and carried across thread boundaries inside the request.
// RC_TRACE_SPAN_IN(ctx, name) adopts such a context on the far side of a
// queue hop; while it is open, plain RC_TRACE_SPAN spans inherit the trace
// through a thread-local current context, so one request reconstructs as a
// single rooted span tree even though it crossed producer and worker
// threads. The Perfetto export emits flow arrows between the threads of a
// trace, and the tail sampler (obs/tail_sampler.h) filters which traces
// survive the export.
//
// Collection is off by default. When the recorder is disabled a span costs
// one relaxed atomic load (the same fast-path shape as the failpoint layer),
// so instrumented hot paths stay at baseline speed; enabling records into
// per-thread buffers guarded by per-thread mutexes, never a global lock on
// the record path.
//
// Open the exported file at chrome://tracing or https://ui.perfetto.dev.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace_context.h"
#include "util/status.h"
#include "util/sync.h"

namespace reconsume {
namespace obs {

/// Monotonic nanoseconds since the process's observability epoch (the first
/// use of any obs clock). The single time source for spans and events.
int64_t MonotonicNanos();

/// \brief One completed span.
struct TraceEvent {
  std::string name;
  int tid = 0;    ///< recorder-assigned thread id (0 = first thread seen)
  int depth = 0;  ///< span nesting depth on its thread (0 = outermost)
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  uint64_t trace_id = 0;        ///< 0 = not part of a request trace
  uint64_t span_id = 0;         ///< unique while recording is enabled
  uint64_t parent_span_id = 0;  ///< 0 = root (within trace_id's tree)
};

namespace internal {
/// Per-thread span buffer; registered with the recorder on first use and
/// kept alive for the process lifetime (worker threads may outlive scrapes).
struct ThreadLog {
  util::Mutex mu;
  std::vector<TraceEvent> events RC_GUARDED_BY(mu);
  /// Assigned once at registration, immutable after publication; readable
  /// without the lock. rc:unguarded(write-once-before-publication)
  int tid = 0;
  /// Span nesting depth; touched only by the owning thread, never shared.
  /// rc:unguarded(owning-thread-only)
  int depth = 0;
  /// Soft size cap: when `events` grows past this, spans belonging to
  /// sampler-dropped traces are compacted away and the watermark adapts
  /// (trace.cc), bounding long-running instrumented services.
  size_t compact_watermark RC_GUARDED_BY(mu) = 8192;
};
}  // namespace internal

/// \brief Process-wide span collector. Thread-safe.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// This thread's buffer (creating and registering it on first use).
  internal::ThreadLog* ThisThreadLog();

  /// Appends one already-timed span to this thread's buffer — the injection
  /// point for spans whose interval was measured across threads and has no
  /// scope to live in (e.g. a request's queue wait: entered on the producer,
  /// exited on the worker). Pass NextSpanId() for a fresh `span_id`, or a
  /// pre-minted id (a TraceContext's own span_id) when children already
  /// reference it. No-op while disabled.
  void RecordSpan(const char* name, uint64_t trace_id, uint64_t span_id,
                  uint64_t parent_span_id, int64_t start_ns,
                  int64_t duration_ns);

  /// Merged copy of every thread's completed spans. The order is total and
  /// reproducible for a given span set — (start_ns, trace_id, span_id) with
  /// span_id unique per span — so trace-smoke diffs are stable even when
  /// threads tie on the same clock tick.
  std::vector<TraceEvent> Snapshot() const;
  /// Drops all recorded spans (thread registrations survive).
  void Clear();

  /// The Chrome trace-event JSON document: "X" complete events (traced
  /// spans carry args.trace_id/span_id/parent_span_id), plus "s"/"f" flow
  /// events binding each multi-thread trace's threads together. While the
  /// tail sampler is active, traces it dropped are omitted.
  std::string ToChromeTraceJson() const;
  /// Atomic-writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mu_;  ///< guards logs_ registration and scrape iteration
  std::vector<std::unique_ptr<internal::ThreadLog>> logs_ RC_GUARDED_BY(mu_);
};

/// \brief RAII span: samples the clock on entry when recording is enabled,
/// appends one TraceEvent to the thread's buffer on exit.
///
/// Trace affiliation: the default constructor inherits the thread's current
/// TraceContext (if any); the two-argument form adopts an explicit context
/// — its span becomes a child of ctx.span_id — which is how a worker stitches
/// onto a trace minted on a producer thread. Either way, while the span is
/// open it is the thread's current context, so nested spans chain under it.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ScopedSpan(const char* name, const TraceContext& ctx);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Open(const char* name, const TraceContext& parent);

  internal::ThreadLog* log_ = nullptr;  ///< null when recording was off
  const char* name_ = nullptr;
  int depth_ = 0;
  int64_t start_ns_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  TraceContext saved_context_;  ///< restored on close
};

}  // namespace obs
}  // namespace reconsume

/// Opens a span covering the rest of the enclosing scope. `name` must be a
/// string with static storage duration (typically a literal).
#define RC_TRACE_SPAN(name) \
  ::reconsume::obs::ScopedSpan RECONSUME_CONCAT_(rc_trace_span_, __LINE__)(name)

/// Opens a span under an explicit TraceContext (typically one carried across
/// a thread boundary inside a request), stitching this thread's work into
/// that request's span tree. A zero context behaves like RC_TRACE_SPAN.
#define RC_TRACE_SPAN_IN(ctx, name)                                     \
  ::reconsume::obs::ScopedSpan RECONSUME_CONCAT_(rc_trace_span_,        \
                                                 __LINE__)((name), (ctx))
