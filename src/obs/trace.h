// Pillar 2 of the observability layer (docs/observability.md): scoped trace
// spans with thread attribution, exported as Chrome-tracing / Perfetto JSON.
//
//   {
//     RC_TRACE_SPAN("train");
//     ...                      // nested spans from any thread attach here
//   }                          // span closes when the scope exits
//
// Collection is off by default. When the recorder is disabled a span costs
// one relaxed atomic load (the same fast-path shape as the failpoint layer),
// so instrumented hot paths stay at baseline speed; enabling records into
// per-thread buffers guarded by per-thread mutexes, never a global lock on
// the record path.
//
// Open the exported file at chrome://tracing or https://ui.perfetto.dev.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/sync.h"

namespace reconsume {
namespace obs {

/// Monotonic nanoseconds since the process's observability epoch (the first
/// use of any obs clock). The single time source for spans and events.
int64_t MonotonicNanos();

/// \brief One completed span.
struct TraceEvent {
  std::string name;
  int tid = 0;    ///< recorder-assigned thread id (0 = first thread seen)
  int depth = 0;  ///< span nesting depth on its thread (0 = outermost)
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
};

namespace internal {
/// Per-thread span buffer; registered with the recorder on first use and
/// kept alive for the process lifetime (worker threads may outlive scrapes).
struct ThreadLog {
  util::Mutex mu;
  std::vector<TraceEvent> events RC_GUARDED_BY(mu);
  /// Assigned once at registration, immutable after publication; readable
  /// without the lock. rc:unguarded(write-once-before-publication)
  int tid = 0;
  /// Span nesting depth; touched only by the owning thread, never shared.
  /// rc:unguarded(owning-thread-only)
  int depth = 0;
};
}  // namespace internal

/// \brief Process-wide span collector. Thread-safe.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// This thread's buffer (creating and registering it on first use).
  internal::ThreadLog* ThisThreadLog();

  /// Merged copy of every thread's completed spans, ordered by start time.
  std::vector<TraceEvent> Snapshot() const;
  /// Drops all recorded spans (thread registrations survive).
  void Clear();

  /// The Chrome trace-event JSON document ("X" complete events).
  std::string ToChromeTraceJson() const;
  /// Atomic-writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mu_;  ///< guards logs_ registration and scrape iteration
  std::vector<std::unique_ptr<internal::ThreadLog>> logs_ RC_GUARDED_BY(mu_);
};

/// \brief RAII span: samples the clock on entry when recording is enabled,
/// appends one TraceEvent to the thread's buffer on exit.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  internal::ThreadLog* log_ = nullptr;  ///< null when recording was off
  const char* name_ = nullptr;
  int depth_ = 0;
  int64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace reconsume

/// Opens a span covering the rest of the enclosing scope. `name` must be a
/// string with static storage duration (typically a literal).
#define RC_TRACE_SPAN(name) \
  ::reconsume::obs::ScopedSpan RECONSUME_CONCAT_(rc_trace_span_, __LINE__)(name)
