// Front door of the observability layer: one object that arms the three
// pillars for a run and writes their outputs at the end.
//
//   auto session = obs::TelemetrySession::Start({
//       .metrics_path = "m.json",    // MetricsRegistry::ToJson at Finish
//       .trace_path = "t.json",      // Chrome/Perfetto trace at Finish
//       .events_path = "e.jsonl",    // streaming JSONL event log
//       .progress_every_sec = 5.0,   // stderr progress reporter cadence
//   });
//
// An all-empty config yields an inactive session (every path free of sinks,
// instrumentation at its atomic fast path), so CLI/bench code can start one
// unconditionally. While active the session also listens for failpoint
// fires, surfacing them as "failpoint_fired" events and a
// "failpoint.fires" counter (docs/robustness.md recoveries thus appear in
// the same stream as the training telemetry).

#pragma once

#include <memory>
#include <string>

#include "obs/event.h"
#include "util/flags.h"
#include "util/status.h"

namespace reconsume {
namespace obs {

struct TelemetryConfig {
  std::string metrics_path;      ///< metrics JSON written at Finish; "" = off
  std::string trace_path;        ///< Chrome trace JSON at Finish; "" = off
  std::string events_path;       ///< JSONL event stream; "" = off
  double progress_every_sec = 0; ///< stderr progress cadence; 0 = off

  bool any() const {
    return !metrics_path.empty() || !trace_path.empty() ||
           !events_path.empty() || progress_every_sec > 0;
  }
};

/// Reads the standard telemetry flags --metrics-out, --trace-out,
/// --events-out, and --progress-every from a parsed FlagSet (marking them
/// used, so CheckNoUnusedFlags callers can adopt telemetry wholesale).
Result<TelemetryConfig> TelemetryConfigFromFlags(const util::FlagSet& flags);

/// \brief Rate-limited stderr progress lines driven by the event stream.
///
/// Prints at most one line per `interval_sec`, except *_end events which
/// always print (so a run's final numbers are never rate-limited away).
class ProgressReporter : public EventSink {
 public:
  explicit ProgressReporter(double interval_sec);
  void Emit(const Event& event) override;

 private:
  const int64_t interval_ns_;
  int64_t last_print_ns_ = -1;
};

/// \brief RAII wiring for one instrumented run. Move-only.
class TelemetrySession {
 public:
  /// Validates the config and attaches the requested sinks. Enables the
  /// trace recorder iff trace_path is set.
  static Result<TelemetrySession> Start(TelemetryConfig config);

  /// Inactive session; Finish is a no-op.
  TelemetrySession() = default;
  TelemetrySession(TelemetrySession&& other) noexcept;
  TelemetrySession& operator=(TelemetrySession&& other) noexcept;
  ~TelemetrySession();  ///< best-effort Finish

  /// Flushes the event sink, writes the metrics and trace files, detaches
  /// everything. Idempotent.
  Status Finish();

  bool active() const { return active_; }

 private:
  TelemetryConfig config_;
  std::unique_ptr<JsonlFileSink> jsonl_;
  std::unique_ptr<ProgressReporter> progress_;
  bool active_ = false;
};

}  // namespace obs
}  // namespace reconsume
