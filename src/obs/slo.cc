#include "obs/slo.h"

#include <algorithm>
#include <cmath>

#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/string_util.h"

namespace reconsume {
namespace obs {

namespace {
constexpr int64_t kNanosPerSecond = 1000000000;
}  // namespace

std::string RenderSloDashboard(const std::vector<SloSnapshot>& snapshots) {
  std::string out;
  for (const SloSnapshot& s : snapshots) {
    out += util::StringPrintf(
        "SLO %-14s target %7.3f%%  window %ds\n", s.name.c_str(),
        s.objective * 100.0, s.window_seconds);
    out += util::StringPrintf(
        "    good %lld  bad %lld  compliance %7.3f%%  "
        "burn %.2fx/%ds %.2fx/%ds  budget left %3.0f%%\n",
        static_cast<long long>(s.good), static_cast<long long>(s.bad),
        s.compliance * 100.0, s.burn_short, s.short_window_seconds,
        s.burn_long, s.window_seconds, s.budget_remaining * 100.0);
  }
  return out;
}

SloMonitor::SloMonitor(SloConfig config) : config_(std::move(config)) {
  RC_CHECK(config_.objective > 0.0 && config_.objective < 1.0)
      << "SLO objective must be in (0, 1)";
  RC_CHECK(config_.window_seconds >= 1 && config_.short_window_seconds >= 1 &&
           config_.short_window_seconds <= config_.window_seconds)
      << "SLO windows must satisfy 1 <= short <= long";
  burn_short_gauge_ = MetricsRegistry::Global().GetGauge(
      "slo." + config_.name + ".burn_short");
  burn_long_gauge_ = MetricsRegistry::Global().GetGauge(
      "slo." + config_.name + ".burn_long");
  util::MutexLock lock(&mu_);
  ring_.assign(static_cast<size_t>(config_.window_seconds), Bucket());
}

double SloMonitor::BurnOver(int window_seconds, int64_t now_second) const {
  int64_t good = 0;
  int64_t bad = 0;
  for (const Bucket& bucket : ring_) {
    if (bucket.second < 0 || bucket.second > now_second ||
        bucket.second <= now_second - window_seconds) {
      continue;
    }
    good += bucket.good;
    bad += bucket.bad;
  }
  const int64_t total = good + bad;
  if (total == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  return bad_fraction / (1.0 - config_.objective);
}

void SloMonitor::AdvanceTo(int64_t second) {
  if (second <= current_second_) return;
  // A gap longer than the ring means every bucket is stale; reset them all
  // instead of walking the (possibly huge) range second by second.
  const int64_t span = second - current_second_;
  if (current_second_ < 0 ||
      span >= static_cast<int64_t>(ring_.size())) {
    for (Bucket& bucket : ring_) bucket = Bucket();
  } else {
    for (int64_t s = current_second_ + 1; s <= second; ++s) {
      Bucket& bucket = ring_[static_cast<size_t>(
          s % static_cast<int64_t>(ring_.size()))];
      bucket.second = s;
      bucket.good = 0;
      bucket.bad = 0;
    }
  }
  Bucket& head = ring_[static_cast<size_t>(
      second % static_cast<int64_t>(ring_.size()))];
  head.second = second;
  current_second_ = second;
}

void SloMonitor::Record(bool good, int64_t now_ns) {
  if (now_ns < 0) now_ns = MonotonicNanos();
  const int64_t second = now_ns / kNanosPerSecond;
  bool emit_alert = false;
  double burn_short = 0;
  double burn_long = 0;
  {
    util::MutexLock lock(&mu_);
    const bool rotated = second > current_second_;
    AdvanceTo(second);
    Bucket& bucket = ring_[static_cast<size_t>(
        second % static_cast<int64_t>(ring_.size()))];
    if (bucket.second == second) {
      // (A racing recorder may already have rotated past a laggard's
      // second; an event older than the ring is simply dropped.)
      if (good) {
        ++bucket.good;
      } else {
        ++bucket.bad;
      }
    }
    if (rotated) {
      burn_short = BurnOver(config_.short_window_seconds, second);
      burn_long = BurnOver(config_.window_seconds, second);
      burn_short_gauge_->Set(burn_short);
      burn_long_gauge_->Set(burn_long);
      if (config_.alert_burn_rate > 0 &&
          burn_short >= config_.alert_burn_rate) {
        if (!alert_raised_) {
          alert_raised_ = true;
          emit_alert = true;
        }
      } else {
        alert_raised_ = false;
      }
    }
  }
  if (emit_alert) {
    alerts_.fetch_add(1, std::memory_order_relaxed);
    RC_EMIT_EVENT(Event("slo_burn")
                      .Set("slo", config_.name)
                      .Set("objective", config_.objective)
                      .Set("burn_rate_short", burn_short)
                      .Set("burn_rate_long", burn_long)
                      .Set("short_window_s", config_.short_window_seconds)
                      .Set("window_s", config_.window_seconds));
  }
}

SloSnapshot SloMonitor::snapshot(int64_t now_ns) const {
  if (now_ns < 0) now_ns = MonotonicNanos();
  const int64_t second = now_ns / kNanosPerSecond;
  SloSnapshot snap;
  snap.name = config_.name;
  snap.objective = config_.objective;
  snap.window_seconds = config_.window_seconds;
  snap.short_window_seconds = config_.short_window_seconds;
  util::MutexLock lock(&mu_);
  for (const Bucket& bucket : ring_) {
    if (bucket.second < 0 || bucket.second > second ||
        bucket.second <= second - config_.window_seconds) {
      continue;
    }
    snap.good += bucket.good;
    snap.bad += bucket.bad;
  }
  const int64_t total = snap.good + snap.bad;
  snap.compliance =
      total > 0 ? static_cast<double>(snap.good) / static_cast<double>(total)
                : 1.0;
  snap.burn_short = BurnOver(config_.short_window_seconds, second);
  snap.burn_long = BurnOver(config_.window_seconds, second);
  snap.budget_remaining = std::max(0.0, 1.0 - snap.burn_long);
  return snap;
}

}  // namespace obs
}  // namespace reconsume
