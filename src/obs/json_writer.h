// Minimal append-only JSON emitter for the observability exporters (metrics
// JSON, Chrome trace JSON, JSONL event records). Not a parser: the obs layer
// only ever *writes* JSON, and pulling in a full JSON library for that would
// violate the no-new-dependencies rule.
//
// Usage:
//   JsonWriter w;
//   w.BeginObject().Key("steps").Value(int64_t{12}).Key("ok").Value(true);
//   w.EndObject();
//   std::string json = std::move(w).Take();
//
// Comma placement is automatic; nesting is tracked so Take() can assert the
// document is complete. Non-finite doubles serialize as null (JSON has no
// NaN/Inf literals, and Perfetto rejects them).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace reconsume {
namespace obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes, control
/// characters, backslash; everything else passes through byte-for-byte).
std::string JsonEscape(std::string_view s);

/// \brief Streaming JSON document builder.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object member key; must be followed by a value or Begin*().
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(double value);  ///< non-finite -> null
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// The finished document. Dies (RC_CHECK) if containers are still open.
  std::string Take() &&;
  /// The buffer so far (tests / incremental inspection).
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One frame per open container: 'o' / 'a', plus whether a value was
  /// already emitted at that level (comma bookkeeping).
  struct Frame {
    char kind;
    bool has_value = false;
  };
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace reconsume
