#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "obs/json_writer.h"
#include "obs/tail_sampler.h"
#include "util/fileio.h"

namespace reconsume {
namespace obs {

namespace {

/// Fresh threads start compacting at this buffer size; the watermark then
/// adapts to twice the surviving span count so a thread whose traces are all
/// retained does not rescan on every append.
constexpr size_t kCompactEvery = 8192;

/// Drops spans of sampler-dropped traces from one thread's buffer. Traces
/// without a verdict yet (in flight) are kept — they may still be retained.
/// Lock order: log->mu is held, and the sampler's mutex nests inside it; the
/// sampler never calls back into the recorder, so the order is acyclic.
void CompactLocked(internal::ThreadLog* log) RC_REQUIRES(log->mu) {
  TraceTailSampler& sampler = TraceTailSampler::Global();
  if (sampler.active()) {
    log->events.erase(
        std::remove_if(log->events.begin(), log->events.end(),
                       [&sampler](const TraceEvent& event) {
                         return event.trace_id != 0 &&
                                sampler.IsDropped(event.trace_id);
                       }),
        log->events.end());
  }
  log->compact_watermark =
      std::max(kCompactEvery, log->events.size() * 2);
}

void AppendLocked(internal::ThreadLog* log, TraceEvent event)
    RC_REQUIRES(log->mu) {
  log->events.push_back(std::move(event));
  if (log->events.size() >= log->compact_watermark) CompactLocked(log);
}

}  // namespace

int64_t MonotonicNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::TraceRecorder() {
  MonotonicNanos();  // pin the epoch before any thread races to it
}

void TraceRecorder::Enable() {
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

internal::ThreadLog* TraceRecorder::ThisThreadLog() {
  thread_local internal::ThreadLog* cached = nullptr;
  if (cached != nullptr) return cached;
  auto log = std::make_unique<internal::ThreadLog>();
  util::MutexLock lock(&mu_);
  log->tid = static_cast<int>(logs_.size());
  cached = log.get();
  logs_.push_back(std::move(log));
  return cached;
}

void TraceRecorder::RecordSpan(const char* name, uint64_t trace_id,
                               uint64_t span_id, uint64_t parent_span_id,
                               int64_t start_ns, int64_t duration_ns) {
  if (!enabled()) return;
  internal::ThreadLog* log = ThisThreadLog();
  TraceEvent event;
  event.name = name;
  event.tid = log->tid;
  event.depth = log->depth;
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  util::MutexLock lock(&log->mu);
  AppendLocked(log, std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> merged;
  {
    util::MutexLock lock(&mu_);
    for (const auto& log : logs_) {
      util::MutexLock log_lock(&log->mu);
      merged.insert(merged.end(), log->events.begin(), log->events.end());
    }
  }
  // span_id is unique per span while recording, so this key is a total
  // order: merges are byte-stable even when threads tie on start_ns.
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.span_id < b.span_id;
            });
  return merged;
}

void TraceRecorder::Clear() {
  util::MutexLock lock(&mu_);
  for (const auto& log : logs_) {
    util::MutexLock log_lock(&log->mu);
    log->events.clear();
    log->compact_watermark = kCompactEvery;
  }
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Snapshot();
  TraceTailSampler& sampler = TraceTailSampler::Global();
  if (sampler.active()) {
    // Tail sampling: only traces the sampler explicitly retained survive.
    // Traces with no verdict (still in flight at export) are filtered too —
    // a partial tree with no root span would fail trace integrity.
    events.erase(std::remove_if(events.begin(), events.end(),
                                [&sampler](const TraceEvent& event) {
                                  return event.trace_id != 0 &&
                                         !sampler.IsRetained(event.trace_id);
                                }),
                 events.end());
  }

  // Earliest span per (trace, tid): the anchor points for flow arrows that
  // stitch a trace's threads together in the Perfetto UI. std::map keeps
  // the emission order deterministic.
  std::map<uint64_t, std::map<int, const TraceEvent*>> trace_tids;
  for (const TraceEvent& event : events) {
    if (event.trace_id == 0) continue;
    const TraceEvent*& anchor = trace_tids[event.trace_id][event.tid];
    if (anchor == nullptr || event.start_ns < anchor->start_ns ||
        (event.start_ns == anchor->start_ns &&
         event.span_id < anchor->span_id)) {
      anchor = &event;
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : events) {
    w.BeginObject();
    w.Key("name").Value(event.name);
    w.Key("cat").Value("reconsume");
    w.Key("ph").Value("X");
    // Chrome trace timestamps are microseconds (fractions allowed).
    w.Key("ts").Value(static_cast<double>(event.start_ns) / 1e3);
    w.Key("dur").Value(static_cast<double>(event.duration_ns) / 1e3);
    w.Key("pid").Value(1);
    w.Key("tid").Value(event.tid);
    w.Key("args").BeginObject();
    w.Key("depth").Value(event.depth);
    if (event.trace_id != 0) {
      w.Key("trace_id").Value(static_cast<int64_t>(event.trace_id));
      w.Key("span_id").Value(static_cast<int64_t>(event.span_id));
      w.Key("parent_span_id")
          .Value(static_cast<int64_t>(event.parent_span_id));
    }
    w.EndObject();
    w.EndObject();
  }
  for (const auto& [trace_id, tids] : trace_tids) {
    if (tids.size() < 2) continue;
    const TraceEvent* origin = nullptr;
    for (const auto& [tid, anchor] : tids) {
      if (origin == nullptr || anchor->start_ns < origin->start_ns ||
          (anchor->start_ns == origin->start_ns &&
           anchor->span_id < origin->span_id)) {
        origin = anchor;
      }
    }
    for (const auto& [tid, anchor] : tids) {
      const bool is_origin = anchor == origin;
      w.BeginObject();
      w.Key("name").Value("request");
      w.Key("cat").Value("flow");
      w.Key("ph").Value(is_origin ? "s" : "f");
      if (!is_origin) w.Key("bp").Value("e");
      w.Key("ts").Value(static_cast<double>(anchor->start_ns) / 1e3);
      w.Key("pid").Value(1);
      w.Key("tid").Value(anchor->tid);
      w.Key("id").Value(static_cast<int64_t>(trace_id));
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  return util::AtomicWriteFile(path, ToChromeTraceJson());
}

void ScopedSpan::Open(const char* name, const TraceContext& parent) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  log_ = recorder.ThisThreadLog();
  name_ = name;
  depth_ = log_->depth++;
  trace_id_ = parent.trace_id;
  parent_span_id_ = parent.span_id;
  span_id_ = NextSpanId();
  TraceContext self;
  self.trace_id = trace_id_;
  self.span_id = span_id_;
  self.parent_span_id = parent_span_id_;
  saved_context_ = ExchangeCurrentTraceContext(self);
  start_ns_ = MonotonicNanos();
}

ScopedSpan::ScopedSpan(const char* name) {
  Open(name, CurrentTraceContext());
}

ScopedSpan::ScopedSpan(const char* name, const TraceContext& ctx) {
  // A zero context degrades to plain-span behaviour: inherit whatever is
  // current instead of detaching the span from an enclosing trace.
  Open(name, ctx.traced() ? ctx : CurrentTraceContext());
}

ScopedSpan::~ScopedSpan() {
  if (log_ == nullptr) return;
  const int64_t end_ns = MonotonicNanos();
  ExchangeCurrentTraceContext(saved_context_);
  --log_->depth;
  TraceEvent event;
  event.name = name_;
  event.tid = log_->tid;
  event.depth = depth_;
  event.start_ns = start_ns_;
  event.duration_ns = end_ns - start_ns_;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_span_id = parent_span_id_;
  util::MutexLock lock(&log_->mu);
  AppendLocked(log_, std::move(event));
}

}  // namespace obs
}  // namespace reconsume
