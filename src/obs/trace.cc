#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/json_writer.h"
#include "util/fileio.h"

namespace reconsume {
namespace obs {

int64_t MonotonicNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::TraceRecorder() {
  MonotonicNanos();  // pin the epoch before any thread races to it
}

void TraceRecorder::Enable() {
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

internal::ThreadLog* TraceRecorder::ThisThreadLog() {
  thread_local internal::ThreadLog* cached = nullptr;
  if (cached != nullptr) return cached;
  auto log = std::make_unique<internal::ThreadLog>();
  util::MutexLock lock(&mu_);
  log->tid = static_cast<int>(logs_.size());
  cached = log.get();
  logs_.push_back(std::move(log));
  return cached;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> merged;
  {
    util::MutexLock lock(&mu_);
    for (const auto& log : logs_) {
      util::MutexLock log_lock(&log->mu);
      merged.insert(merged.end(), log->events.begin(), log->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.duration_ns > b.duration_ns;
            });
  return merged;
}

void TraceRecorder::Clear() {
  util::MutexLock lock(&mu_);
  for (const auto& log : logs_) {
    util::MutexLock log_lock(&log->mu);
    log->events.clear();
  }
}

std::string TraceRecorder::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : events) {
    w.BeginObject();
    w.Key("name").Value(event.name);
    w.Key("cat").Value("reconsume");
    w.Key("ph").Value("X");
    // Chrome trace timestamps are microseconds (fractions allowed).
    w.Key("ts").Value(static_cast<double>(event.start_ns) / 1e3);
    w.Key("dur").Value(static_cast<double>(event.duration_ns) / 1e3);
    w.Key("pid").Value(1);
    w.Key("tid").Value(event.tid);
    w.Key("args").BeginObject().Key("depth").Value(event.depth).EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  return util::AtomicWriteFile(path, ToChromeTraceJson());
}

ScopedSpan::ScopedSpan(const char* name) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  log_ = recorder.ThisThreadLog();
  name_ = name;
  depth_ = log_->depth++;
  start_ns_ = MonotonicNanos();
}

ScopedSpan::~ScopedSpan() {
  if (log_ == nullptr) return;
  const int64_t end_ns = MonotonicNanos();
  --log_->depth;
  TraceEvent event;
  event.name = name_;
  event.tid = log_->tid;
  event.depth = depth_;
  event.start_ns = start_ns_;
  event.duration_ns = end_ns - start_ns_;
  util::MutexLock lock(&log_->mu);
  log_->events.push_back(std::move(event));
}

}  // namespace obs
}  // namespace reconsume
