// Request-scoped trace identity (docs/observability.md, "Request tracing").
//
// A TraceContext names one causal tree: a trace_id shared by every span a
// request produces, the span_id of the context's own span, and the parent it
// hangs under. Contexts are minted where a request is born (e.g.
// RecommendService::Recommend), carried *inside* the request across thread
// boundaries (producer → BoundedQueue → worker), and adopted on the far side
// with RC_TRACE_SPAN_IN, so the request's lifecycle reconstructs as a single
// rooted tree instead of per-thread fragments.
//
// Propagation model: each thread holds a current context. RC_TRACE_SPAN
// spans opened while a context is current inherit its trace and parent
// automatically (and become the current context for their own scope), so
// only the cross-thread hop needs the explicit RC_TRACE_SPAN_IN.
//
// Ids are process-unique monotonic counters starting at 1; 0 always means
// "none" (an untraced span or a root with no parent).

#pragma once

#include <cstdint>

namespace reconsume {
namespace obs {

/// \brief Identity of one causal span tree, carried across threads by value.
struct TraceContext {
  uint64_t trace_id = 0;        ///< 0 = not traced
  uint64_t span_id = 0;         ///< the context's own span
  uint64_t parent_span_id = 0;  ///< 0 = root of the trace

  bool traced() const { return trace_id != 0; }
};

/// A fresh process-unique span id (never 0).
uint64_t NextSpanId();

/// Mints the root context of a new trace: fresh trace_id, fresh span_id,
/// no parent. The minted span_id is the trace's root span; whoever closes
/// the request records that span (see TraceRecorder::RecordSpan).
TraceContext MintTraceContext();

/// This thread's current context ({0,0,0} when none). Spans opened via
/// RC_TRACE_SPAN while a context is current attach under it.
const TraceContext& CurrentTraceContext();

/// Installs `context` as this thread's current context and returns the
/// previous one. Prefer ScopedTraceContext / ScopedSpan, which restore.
TraceContext ExchangeCurrentTraceContext(const TraceContext& context);

/// \brief RAII adoption of a context on this thread (restores on exit).
/// Use when code needs the *context* propagated without opening a span of
/// its own; span-opening callers should use RC_TRACE_SPAN_IN instead.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context)
      : saved_(ExchangeCurrentTraceContext(context)) {}
  ~ScopedTraceContext() { ExchangeCurrentTraceContext(saved_); }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace obs
}  // namespace reconsume
