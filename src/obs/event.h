// Pillar 3 of the observability layer (docs/observability.md): a structured
// training-telemetry stream. Producers (trainer, evaluator, checkpoint
// manager, loaders) build typed Event records and hand them to the global
// EventStream, which stamps sequence/clock/thread metadata and fans them out
// to the attached sinks. The JSONL file sink turns a run into a
// one-JSON-object-per-line log that tools/validate_telemetry.py checks in CI.
//
//   RC_EMIT_EVENT(obs::Event("epoch")
//                     .Set("step", steps)
//                     .Set("r_tilde", r_tilde));
//
// With no sink attached, RC_EMIT_EVENT is a single relaxed atomic load — the
// Event is never even constructed (the macro guards before evaluating its
// argument), mirroring the failpoint fast-path design.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/sync.h"

namespace reconsume {
namespace obs {

/// \brief One telemetry record: a type tag plus ordered typed fields.
class Event {
 public:
  explicit Event(std::string type) : type_(std::move(type)) {}

  Event& Set(std::string key, int64_t value);
  Event& Set(std::string key, int value) {
    return Set(std::move(key), static_cast<int64_t>(value));
  }
  Event& Set(std::string key, double value);
  Event& Set(std::string key, std::string value);
  Event& Set(std::string key, const char* value) {
    return Set(std::move(key), std::string(value));
  }
  Event& Set(std::string key, bool value);

  const std::string& type() const { return type_; }

  /// Stream-stamped metadata (see EventStream::Emit). A negative seq means
  /// "not yet stamped"; tests may stamp manually for golden output.
  int64_t seq = -1;
  int64_t t_ns = -1;
  int tid = -1;

  /// {"type":...,"seq":...,"t_ns":...,"tid":...,<fields in Set order>} —
  /// no trailing newline.
  std::string ToJsonLine() const;

  // --- typed field access (tests and sinks) ---
  struct Field {
    enum class Kind { kInt, kDouble, kString, kBool };
    std::string key;
    Kind kind;
    int64_t i = 0;
    double d = 0.0;
    std::string s;
    bool b = false;
  };
  const std::vector<Field>& fields() const { return fields_; }
  /// First field with `key`, or nullptr.
  const Field* Find(std::string_view key) const;
  /// Numeric value of field `key` (int or double); `fallback` if absent.
  double Number(std::string_view key, double fallback = 0.0) const;

 private:
  std::string type_;
  std::vector<Field> fields_;
};

/// \brief Receives emitted events. The stream serializes Emit calls under
/// its emission lock (one event at a time, in seq order), but does NOT hold
/// the sink-registration lock during the callback — a sink may therefore
/// log, emit metrics, or attach/detach *other* sinks from inside Emit. A
/// sink must not detach itself from within its own Emit (Detach waits for
/// in-flight emissions to drain, so that self-call would deadlock).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void Emit(const Event& event) = 0;
  /// Durably writes anything buffered. Default: nothing to flush.
  virtual Status Flush() { return Status::OK(); }
};

/// \brief Test sink: retains every event in memory.
class CaptureSink : public EventSink {
 public:
  void Emit(const Event& event) override;
  /// Copy of everything captured so far.
  std::vector<Event> events() const;
  void Clear();

 private:
  mutable util::Mutex mu_;
  std::vector<Event> events_ RC_GUARDED_BY(mu_);
};

/// \brief JSONL file sink. Lines buffer in memory and Flush() writes the
/// whole file through util::AtomicWriteFile, so a crash mid-run leaves
/// either the previous complete file or the new one — never a torn line.
class JsonlFileSink : public EventSink {
 public:
  explicit JsonlFileSink(std::string path) : path_(std::move(path)) {}
  ~JsonlFileSink() override;  ///< best-effort Flush

  void Emit(const Event& event) override;
  Status Flush() override;

  const std::string& path() const { return path_; }

 private:
  /// Immutable after construction. rc:unguarded(set-once-in-ctor)
  std::string path_;
  util::Mutex mu_;
  std::string buffer_ RC_GUARDED_BY(mu_);
  bool dirty_ RC_GUARDED_BY(mu_) = false;
};

/// \brief Global fan-out point for telemetry events.
class EventStream {
 public:
  static EventStream& Global();

  /// Attaches a sink (not owned; detach before destroying it). The stream
  /// is enabled while at least one sink is attached.
  void Attach(EventSink* sink) RC_EXCLUDES(mu_);
  /// Waits for any in-flight emission to drain before returning, so after
  /// Detach the sink is guaranteed to receive no further callbacks. Must not
  /// be called from inside a sink's own Emit (see EventSink).
  void Detach(EventSink* sink) RC_EXCLUDES(emit_mu_, mu_);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Stamps seq (monotonic), t_ns (MonotonicNanos), tid (trace thread id)
  /// on the event — unless the producer pre-stamped them (field >= 0) —
  /// then forwards it to every attached sink. No-op when no sink is
  /// attached. t_ns/tid are sampled before any stream lock is taken, so the
  /// trace recorder's lock never nests inside this stream's.
  void Emit(Event event) RC_EXCLUDES(emit_mu_, mu_);

  /// Flushes every attached sink; first error wins. Sinks flush outside the
  /// registration lock (a sink's Flush may log or take its own locks).
  Status Flush() RC_EXCLUDES(mu_);

  EventStream() = default;
  EventStream(const EventStream&) = delete;
  EventStream& operator=(const EventStream&) = delete;

 private:
  std::atomic<bool> enabled_{false};
  /// Serializes emissions end to end (stamping + sink fan-out), preserving
  /// the one-event-at-a-time, seq-ordered sink contract. Held across sink
  /// callbacks; never nested inside mu_. Lock order: emit_mu_ -> mu_.
  util::Mutex emit_mu_;
  /// Guards sink registration only; NOT held while calling into sinks, so a
  /// sink callback may attach/detach other sinks or log without deadlock.
  util::Mutex mu_;
  std::vector<EventSink*> sinks_ RC_GUARDED_BY(mu_);
  int64_t next_seq_ RC_GUARDED_BY(emit_mu_) = 0;
};

}  // namespace obs
}  // namespace reconsume

/// Emits `event_expr` into the global stream. The expression is evaluated
/// only when a sink is attached, so un-instrumented runs pay one relaxed
/// atomic load.
#define RC_EMIT_EVENT(event_expr)                            \
  do {                                                       \
    if (::reconsume::obs::EventStream::Global().enabled()) { \
      ::reconsume::obs::EventStream::Global().Emit(          \
          (event_expr));                                     \
    }                                                        \
  } while (0)
