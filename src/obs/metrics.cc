#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "obs/json_writer.h"
#include "util/check.h"
#include "util/string_util.h"

namespace reconsume {
namespace obs {

namespace internal {

int ShardIndex() {
  static std::atomic<unsigned> next_slot{0};
  thread_local const unsigned slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  static_assert((kMetricShards & (kMetricShards - 1)) == 0,
                "kMetricShards must be a power of two");
  return static_cast<int>(slot & (kMetricShards - 1));
}

}  // namespace internal

namespace {

inline uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }
inline double BitsDouble(uint64_t b) { return std::bit_cast<double>(b); }

/// CAS-loop add on a double stored as bits (relaxed: scrapes only need a
/// consistent per-cell value, not cross-cell ordering).
void AtomicAddDouble(std::atomic<uint64_t>* cell, double delta) {
  uint64_t observed = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(
      observed, DoubleBits(BitsDouble(observed) + delta),
      std::memory_order_relaxed)) {
  }
}

template <typename Better>
void AtomicExtremum(std::atomic<uint64_t>* cell, double v, Better better) {
  uint64_t observed = cell->load(std::memory_order_relaxed);
  while (better(v, BitsDouble(observed)) &&
         !cell->compare_exchange_weak(observed, DoubleBits(v),
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

void Counter::Increment(int64_t delta) {
  shards_[static_cast<size_t>(internal::ShardIndex())].value.fetch_add(
      delta, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

Gauge::Gauge() : bits_(DoubleBits(0.0)) {}

void Gauge::Set(double value) {
  bits_.store(DoubleBits(value), std::memory_order_relaxed);
}

double Gauge::Value() const {
  return BitsDouble(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      shards_(std::make_unique<Shard[]>(kMetricShards)) {
  RC_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  RC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  const size_t num_buckets = bounds_.size() + 1;
  exemplars_ = std::make_unique<std::atomic<uint64_t>[]>(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    exemplars_[b].store(0, std::memory_order_relaxed);
  }
  for (int s = 0; s < kMetricShards; ++s) {
    shards_[s].buckets = std::make_unique<std::atomic<int64_t>[]>(num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) {
      shards_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
    shards_[s].sum_bits.store(DoubleBits(0.0), std::memory_order_relaxed);
    shards_[s].min_bits.store(
        DoubleBits(std::numeric_limits<double>::infinity()),
        std::memory_order_relaxed);
    shards_[s].max_bits.store(
        DoubleBits(-std::numeric_limits<double>::infinity()),
        std::memory_order_relaxed);
  }
}

size_t Histogram::BucketIndex(double value) const {
  // First bound >= value; the trailing overflow bucket catches the rest.
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  Shard& shard = shards_[static_cast<size_t>(internal::ShardIndex())];
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&shard.sum_bits, value);
  AtomicExtremum(&shard.min_bits, value, std::less<double>());
  AtomicExtremum(&shard.max_bits, value, std::greater<double>());
}

void Histogram::Observe(double value, uint64_t exemplar_trace_id) {
  if (std::isnan(value)) return;
  Observe(value);
  if (exemplar_trace_id != 0) {
    exemplars_[BucketIndex(value)].store(exemplar_trace_id,
                                         std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  snap.exemplars.resize(bounds_.size() + 1);
  for (size_t b = 0; b < snap.exemplars.size(); ++b) {
    snap.exemplars[b] = exemplars_[b].load(std::memory_order_relaxed);
  }
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (int s = 0; s < kMetricShards; ++s) {
    const Shard& shard = shards_[s];
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += BitsDouble(shard.sum_bits.load(std::memory_order_relaxed));
    min = std::min(min,
                   BitsDouble(shard.min_bits.load(std::memory_order_relaxed)));
    max = std::max(max,
                   BitsDouble(shard.max_bits.load(std::memory_order_relaxed)));
  }
  snap.min = snap.count > 0 ? min : 0.0;
  snap.max = snap.count > 0 ? max : 0.0;
  return snap;
}

double HistogramSnapshot::Mean() const {
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const int64_t next = cumulative + counts[b];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside the bucket; clamp the bucket edges to the
      // recorded extrema so the estimate never leaves [min, max].
      const double lo =
          b == 0 ? min : std::max(min, bounds[b - 1]);
      const double hi = b < bounds.size() ? std::min(max, bounds[b]) : max;
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return max;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  RC_CHECK(width > 0 && count > 0);
  std::vector<double> bounds(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    bounds[static_cast<size_t>(i)] = start + width * (i + 1);
  }
  return bounds;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  RC_CHECK(start > 0 && factor > 1.0 && count > 0);
  std::vector<double> bounds(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds[static_cast<size_t>(i)] = bound;
    bound *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  util::MutexLock lock(&mu_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  util::MutexLock lock(&mu_);
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  util::MutexLock lock(&mu_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) slot.reset(new Histogram(std::move(bounds)));
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  util::MutexLock lock(&mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name).Value(counter->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name).Value(gauge->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->Snapshot();
    w.Key(name).BeginObject();
    w.Key("count").Value(snap.count);
    w.Key("sum").Value(snap.sum);
    w.Key("mean").Value(snap.Mean());
    w.Key("min").Value(snap.min);
    w.Key("max").Value(snap.max);
    w.Key("p50").Value(snap.Quantile(0.5));
    w.Key("p90").Value(snap.Quantile(0.9));
    w.Key("p99").Value(snap.Quantile(0.99));
    w.Key("bounds").BeginArray();
    for (const double bound : snap.bounds) w.Value(bound);
    w.EndArray();
    w.Key("counts").BeginArray();
    for (const int64_t c : snap.counts) w.Value(c);
    w.EndArray();
    w.Key("exemplars").BeginArray();
    for (const uint64_t e : snap.exemplars) {
      w.Value(static_cast<int64_t>(e));
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).Take();
}

std::string MetricsRegistry::ToText() const {
  util::MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += util::StringPrintf("counter %s %lld\n", name.c_str(),
                              static_cast<long long>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out += util::StringPrintf("gauge %s %g\n", name.c_str(), gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->Snapshot();
    out += util::StringPrintf(
        "histogram %s count=%lld mean=%g p50=%g p99=%g min=%g max=%g\n",
        name.c_str(), static_cast<long long>(snap.count), snap.Mean(),
        snap.Quantile(0.5), snap.Quantile(0.99), snap.min, snap.max);
  }
  return out;
}

void MetricsRegistry::Reset() {
  util::MutexLock lock(&mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace obs
}  // namespace reconsume
