// Cox proportional-hazards regression, from scratch.
//
// Substrate for the Survival baseline (ref. [30], Kapoor et al., KDD 2014),
// which the paper runs through the Python `lifelines` package; here the same
// estimator is implemented directly: Newton–Raphson on the Breslow partial
// likelihood plus the Breslow baseline cumulative-hazard estimator.

#pragma once

#include <vector>

#include "util/status.h"

namespace reconsume {
namespace survival {

/// \brief One subject: time-to-event (or censoring) with covariates.
struct SurvivalRecord {
  double duration = 0.0;   ///< > 0
  bool event = false;      ///< true = event observed, false = right-censored
  std::vector<double> covariates;
};

struct CoxOptions {
  int max_iterations = 60;
  double gradient_tolerance = 1e-7;
  /// L2 ridge on the coefficients; stabilizes separation on degenerate data.
  double ridge = 1e-6;
};

/// \brief Fitted Cox PH model: h(t | x) = h0(t) * exp(beta^T x).
class CoxModel {
 public:
  /// Fits by maximizing the Breslow partial likelihood. All records must have
  /// the same covariate width and positive durations; at least one event is
  /// required.
  static Result<CoxModel> Fit(const std::vector<SurvivalRecord>& records,
                              const CoxOptions& options = CoxOptions());

  const std::vector<double>& coefficients() const { return beta_; }
  double log_partial_likelihood() const { return log_likelihood_; }
  int iterations() const { return iterations_; }

  /// exp(beta^T x) — the subject's hazard ratio.
  double HazardRatio(const std::vector<double>& covariates) const;
  double LogHazardRatio(const std::vector<double>& covariates) const;

  /// Breslow baseline cumulative hazard H0(t) (step function, evaluated by
  /// binary search over event times).
  double BaselineCumulativeHazard(double t) const;

  /// Approximate baseline hazard h0 at t: the H0 increment in [t, t+dt).
  double BaselineHazard(double t, double dt = 1.0) const {
    return BaselineCumulativeHazard(t + dt) - BaselineCumulativeHazard(t);
  }

  /// S(t | x) = exp(-H0(t) * exp(beta^T x)).
  double SurvivalProbability(double t,
                             const std::vector<double>& covariates) const;

  /// Smallest observed event time t with S(t | x) <= 0.5 — the predicted
  /// (median) return time. When survival never crosses 0.5 within the
  /// observed horizon (heavy censoring), returns twice the largest event
  /// time as a pessimistic "far future" estimate.
  double MedianSurvivalTime(const std::vector<double>& covariates) const;

 private:
  CoxModel() = default;

  std::vector<double> beta_;
  double log_likelihood_ = 0.0;
  int iterations_ = 0;
  // Breslow estimator support: distinct event times (ascending) and the
  // cumulative hazard reached at each.
  std::vector<double> event_times_;
  std::vector<double> cumulative_hazard_;
};

}  // namespace survival
}  // namespace reconsume

