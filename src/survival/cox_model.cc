#include "survival/cox_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/matrix.h"
#include "math/newton.h"
#include "math/vector_ops.h"

namespace reconsume {
namespace survival {

namespace {

/// Indices sorted by duration descending, so a forward sweep grows the risk
/// set {j : tau_j >= tau_i} incrementally.
std::vector<size_t> SortByDurationDescending(
    const std::vector<SurvivalRecord>& records) {
  std::vector<size_t> order(records.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return records[a].duration > records[b].duration;
  });
  return order;
}

}  // namespace

Result<CoxModel> CoxModel::Fit(const std::vector<SurvivalRecord>& records,
                               const CoxOptions& options) {
  if (records.empty()) return Status::InvalidArgument("Cox: no records");
  const size_t p = records[0].covariates.size();
  if (p == 0) return Status::InvalidArgument("Cox: zero covariate width");
  size_t num_events = 0;
  for (const auto& r : records) {
    if (r.covariates.size() != p) {
      return Status::InvalidArgument("Cox: ragged covariates");
    }
    if (!(r.duration > 0.0) || !std::isfinite(r.duration)) {
      return Status::InvalidArgument("Cox: durations must be positive finite");
    }
    if (!math::AllFinite(r.covariates)) {
      return Status::InvalidArgument("Cox: non-finite covariate");
    }
    if (r.event) ++num_events;
  }
  if (num_events == 0) {
    return Status::FailedPrecondition("Cox: no observed events (all censored)");
  }

  const auto order = SortByDurationDescending(records);

  // Negative Breslow log partial likelihood with its derivatives. The sweep
  // adds every record with duration >= current event time into the risk-set
  // accumulators (S0, S1, S2) before processing the events at that time,
  // which is exactly Breslow tie handling.
  auto objective = [&](const std::vector<double>& beta)
      -> Result<math::ObjectiveEvaluation> {
    math::ObjectiveEvaluation eval;
    eval.gradient.assign(p, 0.0);
    eval.hessian = math::Matrix(p, p);

    double s0 = 0.0;
    std::vector<double> s1(p, 0.0);
    math::Matrix s2(p, p);

    size_t pos = 0;
    while (pos < order.size()) {
      const double time = records[order[pos]].duration;
      // Add all records tied at `time` to the risk set.
      size_t tie_end = pos;
      while (tie_end < order.size() &&
             records[order[tie_end]].duration == time) {
        const auto& r = records[order[tie_end]];
        const double w = std::exp(math::Dot(beta, r.covariates));
        if (!std::isfinite(w)) {
          return Status::NumericalError("Cox: exp overflow in risk set");
        }
        s0 += w;
        for (size_t a = 0; a < p; ++a) {
          s1[a] += w * r.covariates[a];
          for (size_t b = 0; b < p; ++b) {
            s2(a, b) += w * r.covariates[a] * r.covariates[b];
          }
        }
        ++tie_end;
      }
      // Process events at this time against the updated risk set.
      for (size_t i = pos; i < tie_end; ++i) {
        const auto& r = records[order[i]];
        if (!r.event) continue;
        eval.value -= math::Dot(beta, r.covariates) - std::log(s0);
        for (size_t a = 0; a < p; ++a) {
          const double mean_a = s1[a] / s0;
          eval.gradient[a] += mean_a - r.covariates[a];
          for (size_t b = 0; b < p; ++b) {
            eval.hessian(a, b) += s2(a, b) / s0 - mean_a * (s1[b] / s0);
          }
        }
      }
      pos = tie_end;
    }

    // Ridge term.
    for (size_t a = 0; a < p; ++a) {
      eval.value += 0.5 * options.ridge * beta[a] * beta[a];
      eval.gradient[a] += options.ridge * beta[a];
      eval.hessian(a, a) += options.ridge;
    }
    return eval;
  };

  math::NewtonOptions newton;
  newton.max_iterations = options.max_iterations;
  newton.gradient_tolerance = options.gradient_tolerance;
  RECONSUME_ASSIGN_OR_RETURN(
      math::NewtonReport report,
      math::MinimizeNewton(objective, std::vector<double>(p, 0.0), newton));

  CoxModel model;
  model.beta_ = report.solution;
  model.log_likelihood_ = -report.objective_value;
  model.iterations_ = report.iterations;

  // Breslow baseline cumulative hazard: H0(t) = sum_{t_i <= t} d_i / S0(t_i).
  // Sweep durations descending, recording S0 at each distinct event time.
  {
    double s0 = 0.0;
    std::vector<std::pair<double, double>> time_and_increment;  // descending
    size_t pos = 0;
    while (pos < order.size()) {
      const double time = records[order[pos]].duration;
      size_t tie_end = pos;
      int deaths = 0;
      while (tie_end < order.size() &&
             records[order[tie_end]].duration == time) {
        const auto& r = records[order[tie_end]];
        s0 += std::exp(math::Dot(model.beta_, r.covariates));
        if (r.event) ++deaths;
        ++tie_end;
      }
      if (deaths > 0) {
        time_and_increment.emplace_back(time,
                                        static_cast<double>(deaths) / s0);
      }
      pos = tie_end;
    }
    std::reverse(time_and_increment.begin(), time_and_increment.end());
    double cumulative = 0.0;
    for (const auto& [time, inc] : time_and_increment) {
      cumulative += inc;
      model.event_times_.push_back(time);
      model.cumulative_hazard_.push_back(cumulative);
    }
  }
  return model;
}

double CoxModel::LogHazardRatio(const std::vector<double>& covariates) const {
  RECONSUME_CHECK(covariates.size() == beta_.size());
  return math::Dot(beta_, covariates);
}

double CoxModel::HazardRatio(const std::vector<double>& covariates) const {
  return std::exp(LogHazardRatio(covariates));
}

double CoxModel::BaselineCumulativeHazard(double t) const {
  // Largest event time <= t.
  const auto it =
      std::upper_bound(event_times_.begin(), event_times_.end(), t);
  if (it == event_times_.begin()) return 0.0;
  return cumulative_hazard_[static_cast<size_t>(
      std::distance(event_times_.begin(), it) - 1)];
}

double CoxModel::SurvivalProbability(
    double t, const std::vector<double>& covariates) const {
  return std::exp(-BaselineCumulativeHazard(t) * HazardRatio(covariates));
}

double CoxModel::MedianSurvivalTime(
    const std::vector<double>& covariates) const {
  // S(t|x) <= 0.5  <=>  H0(t) >= ln(2) / exp(beta^T x).
  const double threshold = std::log(2.0) / HazardRatio(covariates);
  const auto it = std::lower_bound(cumulative_hazard_.begin(),
                                   cumulative_hazard_.end(), threshold);
  if (it == cumulative_hazard_.end()) {
    return event_times_.empty() ? 0.0 : 2.0 * event_times_.back();
  }
  return event_times_[static_cast<size_t>(
      std::distance(cumulative_hazard_.begin(), it))];
}

}  // namespace survival
}  // namespace reconsume
