// Table 2: statistics of the two dataset profiles after the paper's user
// filter (0.7 |S_u| >= 100).

#include <cstdio>

#include "bench/common.h"

using namespace reconsume;

int main() {
  eval::TextTable table({"Data Set", "Type", "Users", "Items", "Consumption",
                         "mean |S_u|", "windowed repeat %"});
  for (auto&& bundle : bench::MakeBothBundles()) {
    const auto stats = data::ComputeDatasetStats(
        *bundle.dataset, bundle.defaults.window_capacity);
    table.AddRow({bundle.name,
                  bundle.name == "gowalla-like" ? "LBSN" : "Music",
                  util::FormatWithCommas(stats.num_users),
                  util::FormatWithCommas(stats.num_items),
                  util::FormatWithCommas(stats.num_interactions),
                  eval::TextTable::Cell(stats.mean_sequence_length, 1),
                  eval::TextTable::Cell(100.0 * stats.repeat_fraction, 1)});
  }
  std::printf("=== Table 2: dataset statistics (scale=%g) ===\n%s\n",
              bench::GetScale(), table.ToString().c_str());
  std::printf(
      "note: synthetic stand-ins for the Gowalla / Last.fm traces; the\n"
      "generator reproduces the statistics the method is sensitive to\n"
      "(see DESIGN.md section 1). The real loaders in src/data/loaders.h\n"
      "accept the published file formats directly.\n");
  return 0;
}
