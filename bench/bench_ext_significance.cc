// Extension: statistical significance of the Fig. 5/6 wins — per-user paired
// sign tests and Wilcoxon signed-rank tests of TS-PPR against every paper
// baseline.

#include <cstdio>

#include "bench/common.h"
#include "eval/significance.h"

using namespace reconsume;

int main() {
  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("EXT: paired significance of TS-PPR vs baselines",
                       bundle);
    auto methods = bench::FitAllMethods(bundle, /*include_ppr_static=*/false);
    bench::Method& ts_ppr = methods.back();
    RECONSUME_CHECK(ts_ppr.name == "TS-PPR");

    eval::EvalOptions options;
    options.window_capacity = bundle.defaults.window_capacity;
    options.min_gap = bundle.defaults.min_gap;

    eval::TextTable table({"baseline", "N", "wins/losses/ties (Top-10)",
                           "mean dP(u)", "sign p", "wilcoxon p"});
    for (auto& baseline : methods) {
      if (baseline.name == "TS-PPR") continue;
      auto comparisons =
          eval::ComparePaired(*bundle.split, options, ts_ppr.recommender,
                              baseline.recommender);
      RECONSUME_CHECK(comparisons.ok()) << comparisons.status();
      const eval::PairedComparison& c =
          comparisons.ValueOrDie().back();  // Top-10
      table.AddRow(
          {baseline.name, std::to_string(c.num_users),
           util::StringPrintf("%d/%d/%d", c.wins_a, c.wins_b, c.ties),
           util::StringPrintf("%+.4f", c.mean_difference),
           util::StringPrintf("%.2e", c.sign_test_p),
           util::StringPrintf("%.2e", c.wilcoxon_p)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
