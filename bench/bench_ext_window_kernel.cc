// Extension: two knobs the paper fixes without sweeping —
//   (a) the time-window capacity |W| (fixed at 100 in §5.1), and
//   (b) the recency-kernel family, including the generalized power law of
//       ref. [14] (exponent p; p = 1 is the paper's hyperbolic Eq. 19).
// The power-law sweep is a probe of kernel mis-specification: the
// gowalla-like generator decays interest with exponent 1.2.

#include <cstdio>

#include "bench/common.h"

using namespace reconsume;

int main() {
  // (a) window-capacity sweep. Both training and evaluation use the swept
  // |W|; eligible instances change with it, so instance counts are reported.
  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("EXT: window capacity |W| sweep", bundle);
    eval::TextTable table({"|W|", "instances", "MaAP@10", "MiAP@10"});
    for (int window : {25, 50, 100, 200}) {
      auto config = bench::MakeTsPprConfig(bundle);
      config.sampling.window_capacity = window;
      auto method = bench::FitTsPpr(bundle, config);

      eval::EvalOptions options;
      options.window_capacity = window;
      options.min_gap = bundle.defaults.min_gap;
      eval::Evaluator evaluator(bundle.split.get(), options);
      auto result = evaluator.Evaluate(method.recommender);
      RECONSUME_CHECK(result.ok()) << result.status();
      const auto& acc = result.ValueOrDie();
      table.AddRow({std::to_string(window),
                    util::FormatWithCommas(acc.num_instances),
                    eval::TextTable::Cell(acc.MaapAt(10)),
                    eval::TextTable::Cell(acc.MiapAt(10))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  // (b) power-law recency exponent sweep on the gowalla-like profile.
  {
    auto bundle = bench::MakeGowallaBundle();
    bench::PrintHeader("EXT: recency power-law exponent sweep", bundle);
    eval::TextTable table({"kernel", "MaAP@10", "MiAP@10"});
    for (double exponent : {0.5, 1.0, 1.2, 2.0}) {
      auto config = bench::MakeTsPprConfig(bundle);
      config.features.recency_kernel = features::RecencyKernel::kPowerLaw;
      config.features.power_law_exponent = exponent;
      auto method = bench::FitTsPpr(bundle, config);
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow({util::StringPrintf("gap^-%.1f", exponent),
                    eval::TextTable::Cell(acc.MaapAt(10)),
                    eval::TextTable::Cell(acc.MiapAt(10))});
    }
    {
      auto config = bench::MakeTsPprConfig(bundle);
      config.features.recency_kernel = features::RecencyKernel::kExponential;
      auto method = bench::FitTsPpr(bundle, config);
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow({"exp(-gap)", eval::TextTable::Cell(acc.MaapAt(10)),
                    eval::TextTable::Cell(acc.MiapAt(10))});
    }
    std::printf("%s(generator decays with gap^-1.2)\n\n",
                table.ToString().c_str());
  }
  return 0;
}
