// Figs. 5 & 6 + Table 3: MaAP@{1,5,10} and MiAP@{1,5,10} for all methods on
// both dataset profiles, plus TS-PPR's relative improvement over the best
// baseline at each cutoff.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "util/string_util.h"

using namespace reconsume;

namespace {

void RunDataset(bench::DatasetBundle bundle) {
  bench::PrintHeader("Fig. 5/6 + Table 3: recommendation accuracy", bundle);

  auto methods = bench::FitAllMethods(bundle, /*include_ppr_static=*/true);
  std::vector<eval::AccuracyResult> results;
  results.reserve(methods.size());
  for (auto& method : methods) {
    results.push_back(bench::EvaluateMethod(bundle, &method));
  }

  eval::TextTable table({"method", "MaAP@1", "MaAP@5", "MaAP@10", "MiAP@1",
                         "MiAP@5", "MiAP@10"});
  for (const auto& r : results) {
    table.AddRow({r.method, eval::TextTable::Cell(r.MaapAt(1)),
                  eval::TextTable::Cell(r.MaapAt(5)),
                  eval::TextTable::Cell(r.MaapAt(10)),
                  eval::TextTable::Cell(r.MiapAt(1)),
                  eval::TextTable::Cell(r.MiapAt(5)),
                  eval::TextTable::Cell(r.MiapAt(10))});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Table 3: TS-PPR improvement over the best baseline (PPR(static) is an
  // extra ablation row, not a paper baseline, so it is excluded).
  const eval::AccuracyResult* ts_ppr = nullptr;
  std::vector<const eval::AccuracyResult*> paper_baselines;
  for (const auto& r : results) {
    if (r.method == "TS-PPR") {
      ts_ppr = &r;
    } else if (r.method != "PPR(static)") {
      paper_baselines.push_back(&r);
    }
  }
  RECONSUME_CHECK(ts_ppr != nullptr);

  eval::TextTable improvement(
      {"cutoff", "best baseline (MaAP)", "MaAP gain", "best baseline (MiAP)",
       "MiAP gain"});
  for (int n : {1, 5, 10}) {
    double best_maap = 0.0, best_miap = 0.0;
    std::string best_maap_name, best_miap_name;
    for (const auto* b : paper_baselines) {
      if (b->MaapAt(n) > best_maap) {
        best_maap = b->MaapAt(n);
        best_maap_name = b->method;
      }
      if (b->MiapAt(n) > best_miap) {
        best_miap = b->MiapAt(n);
        best_miap_name = b->method;
      }
    }
    auto gain = [](double ours, double best) {
      if (best <= 0) return std::string("n/a");
      const double pct = 100.0 * (ours / best - 1.0);
      return util::StringPrintf("%+.0f%%", pct);
    };
    improvement.AddRow({"Top-" + std::to_string(n),
                        best_maap_name + " " + eval::TextTable::Cell(best_maap),
                        gain(ts_ppr->MaapAt(n), best_maap),
                        best_miap_name + " " + eval::TextTable::Cell(best_miap),
                        gain(ts_ppr->MiapAt(n), best_miap)});
  }
  std::printf("Table 3 (relative improvement of TS-PPR):\n%s\n",
              improvement.ToString().c_str());
}

}  // namespace

int main() {
  RunDataset(bench::MakeGowallaBundle());
  RunDataset(bench::MakeLastfmBundle());
  return 0;
}
