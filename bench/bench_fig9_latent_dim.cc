// Fig. 9: sensitivity of TS-PPR to the latent dimension K, including the
// K = F identity-mapping special case of §4.2.1 (DESIGN.md ablation #4).

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace reconsume;

int main() {
  const std::vector<int> dims = {4, 10, 20, 40, 60, 80};

  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("Fig. 9: latent dimension sensitivity", bundle);
    eval::TextTable table({"K", "MaAP@10", "MiAP@10", "train s"});
    for (int k : dims) {
      auto config = bench::MakeTsPprConfig(bundle);
      config.model.latent_dim = k;
      auto method = bench::FitTsPpr(bundle, config);
      const auto* ts = static_cast<const core::TsPpr*>(method.owner.get());
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow({std::to_string(k), eval::TextTable::Cell(acc.MaapAt(10)),
                    eval::TextTable::Cell(acc.MiapAt(10)),
                    eval::TextTable::Cell(ts->train_report().wall_seconds, 2)});
    }
    std::printf("%s\n", table.ToString().c_str());

    // K = F with A_u fixed to the identity (§4.2.1 case 2).
    auto config = bench::MakeTsPprConfig(bundle);
    config.model.latent_dim = config.features.dimension();
    config.model.identity_mapping_when_square = true;
    auto method = bench::FitTsPpr(bundle, config, "TS-PPR identity-A");
    const auto acc = bench::EvaluateMethod(bundle, &method);
    std::printf("K=F=%d with A_u=I: MaAP@10=%.4f MiAP@10=%.4f\n\n",
                config.features.dimension(), acc.MaapAt(10), acc.MiapAt(10));
  }
  return 0;
}
