// Fig. 8: sensitivity of TS-PPR to the regularization parameters lambda
// (on the mappings A_u) and gamma (on U, V). One parameter sweeps while the
// other stays at its Table 4 default.

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace reconsume;

int main() {
  const std::vector<double> values = {1e-4, 1e-3, 1e-2, 1e-1, 1.0};

  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("Fig. 8: regularization sensitivity", bundle);

    eval::TextTable lambda_table({"lambda", "MaAP@10", "MiAP@10"});
    for (double lambda : values) {
      auto config = bench::MakeTsPprConfig(bundle);
      config.model.lambda = lambda;
      auto method = bench::FitTsPpr(bundle, config);
      const auto acc = bench::EvaluateMethod(bundle, &method);
      lambda_table.AddRow({eval::TextTable::Cell(lambda, 4),
                           eval::TextTable::Cell(acc.MaapAt(10)),
                           eval::TextTable::Cell(acc.MiapAt(10))});
    }
    std::printf("sweep lambda (gamma=%g):\n%s\n", bundle.defaults.gamma,
                lambda_table.ToString().c_str());

    eval::TextTable gamma_table({"gamma", "MaAP@10", "MiAP@10"});
    for (double gamma : values) {
      auto config = bench::MakeTsPprConfig(bundle);
      config.model.gamma = gamma;
      auto method = bench::FitTsPpr(bundle, config);
      const auto acc = bench::EvaluateMethod(bundle, &method);
      gamma_table.AddRow({eval::TextTable::Cell(gamma, 4),
                          eval::TextTable::Cell(acc.MaapAt(10)),
                          eval::TextTable::Cell(acc.MiapAt(10))});
    }
    std::printf("sweep gamma (lambda=%g):\n%s\n", bundle.defaults.lambda,
                gamma_table.ToString().c_str());
  }
  return 0;
}
