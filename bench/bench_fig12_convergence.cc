// Fig. 12: model convergence — the small-batch average preference difference
// r~ at each convergence check point (every |D|/10 SGD steps), until
// |delta r~| <= 1e-3 (§5.6.1). The paper observes a higher converged r~ on
// Gowalla than on Lastfm, mirroring the larger accuracy margin there.
//
// Accepts the standard bench flags (--json-out, --metrics-out, --trace-out,
// --events-out, --progress-every); per-check timings come from the trainer's
// own telemetry (`epoch` events, trainer.quadruples_per_sec histogram) rather
// than bench-side stopwatches.

#include <cstdio>

#include "bench/common.h"

using namespace reconsume;

int main(int argc, char** argv) {
  bench::BenchRun run("fig12_convergence", argc, argv);
  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("Fig. 12: convergence of r~ (S=10, Omega=10)", bundle);
    auto config = bench::MakeTsPprConfig(bundle);
    auto method = bench::FitTsPpr(bundle, config);
    const auto* ts = static_cast<const core::TsPpr*>(method.owner.get());
    const auto& report = ts->train_report();

    eval::TextTable table({"SGD steps", "r~", "bar"});
    double max_r = 1e-9;
    for (const auto& point : report.curve) {
      max_r = std::max(max_r, point.r_tilde);
    }
    for (const auto& point : report.curve) {
      const int width = point.r_tilde <= 0
                            ? 0
                            : static_cast<int>(40.0 * point.r_tilde / max_r);
      table.AddRow({util::FormatWithCommas(point.step),
                    eval::TextTable::Cell(point.r_tilde),
                    std::string(static_cast<size_t>(width), '#')});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("converged=%s after %s steps, final r~=%.4f, %.2fs\n\n",
                report.converged ? "yes" : "no",
                util::FormatWithCommas(report.steps).c_str(),
                report.final_r_tilde, report.wall_seconds);

    run.AddValue(bundle.name, "converged", report.converged ? 1.0 : 0.0);
    run.AddValue(bundle.name, "steps", static_cast<double>(report.steps));
    run.AddValue(bundle.name, "checks",
                 static_cast<double>(report.curve.size()));
    run.AddValue(bundle.name, "final_r_tilde", report.final_r_tilde);
    run.AddValue(bundle.name, "wall_seconds", report.wall_seconds);
  }
  RECONSUME_CHECK_OK(run.Finish());
  return 0;
}
