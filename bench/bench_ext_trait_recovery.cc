// Extension: does the personalized mapping A_u actually learn *user traits*?
//
// The synthetic generator drives each user's repeat choices with hidden
// per-user weights on recency / quality / familiarity. After training, the
// model's effective feature weights w_u = A_u^T u are rank-correlated with
// those hidden traits, per feature, as a function of the minimum gap Omega.
//
// The sweep exposes a real selection effect: with the paper's Omega = 10 the
// training quadruples exclude every repeat with gap <= 10 — precisely the
// events recency-driven users generate — so the recency trait is censored
// and its correlation collapses (or flips sign) as Omega grows, while the
// quality trait stays identifiable.

#include <cstdio>

#include "bench/common.h"
#include "math/stats.h"

using namespace reconsume;

int main() {
  data::SyntheticTraceGenerator generator(
      data::GowallaLikeProfile(bench::GetScale()));
  std::vector<data::UserTraits> traits;
  auto dataset_result = generator.Generate(&traits);
  RECONSUME_CHECK(dataset_result.ok()) << dataset_result.status();
  const data::Dataset dataset = std::move(dataset_result).ValueOrDie();
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();

  std::printf("=== EXT: trait recovery by the personalized mappings "
              "(gowalla-like, %zu users) ===\n\n",
              dataset.num_users());

  eval::TextTable table({"Omega", "corr(recency)", "corr(quality)",
                         "corr(familiarity)"});
  for (int omega : {1, 5, 10, 20}) {
    core::TsPprPipelineConfig config;
    config.sampling.min_gap = omega;
    config.train.convergence_tolerance = 1e-4;
    auto fitted = core::TsPpr::Fit(split, config);
    RECONSUME_CHECK(fitted.ok()) << fitted.status();
    const core::TsPpr& ts_ppr = fitted.ValueOrDie();

    std::vector<double> learned[3], truth[3];
    for (size_t u = 0; u < dataset.num_users(); ++u) {
      const auto w = ts_ppr.model().EffectiveFeatureWeights(
          static_cast<data::UserId>(u));
      learned[0].push_back(w[2]);  // RE
      learned[1].push_back(w[0]);  // IP
      learned[2].push_back(w[3]);  // DF
      truth[0].push_back(traits[u].recency_weight);
      truth[1].push_back(traits[u].quality_weight);
      truth[2].push_back(traits[u].familiarity_weight);
    }
    table.AddRow({std::to_string(omega),
                  eval::TextTable::Cell(
                      math::SpearmanCorrelation(learned[0], truth[0]), 3),
                  eval::TextTable::Cell(
                      math::SpearmanCorrelation(learned[1], truth[1]), 3),
                  eval::TextTable::Cell(
                      math::SpearmanCorrelation(learned[2], truth[2]), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "reading: Spearman rank correlation across users between the hidden\n"
      "generator trait and the learned effective weight w_u = A_u^T u.\n"
      "Recency identifiability decays with Omega (gap-censoring); quality\n"
      "stays identifiable because it is gap-independent.\n");
  return 0;
}
