// Extension: the interest-forgetting Markov baseline (ref. [14], the
// authors' precursor work) against TS-PPR and FPMC, with a personalization
// sweep — sequence models with forgetting vs feature-based pairwise ranking.

#include <cstdio>

#include "baselines/fpmc.h"
#include "baselines/markov_if.h"
#include "bench/common.h"

using namespace reconsume;

int main() {
  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("EXT: interest-forgetting Markov baseline", bundle);

    eval::TextTable table({"method", "MaAP@1", "MaAP@5", "MaAP@10"});
    for (double beta : {0.0, 0.5, 1.0}) {
      baselines::MarkovIfConfig config;
      config.personalization = beta;
      auto fitted = baselines::MarkovIfRecommender::Fit(*bundle.split, config);
      RECONSUME_CHECK(fitted.ok()) << fitted.status();
      auto owner = std::make_shared<baselines::MarkovIfRecommender>(
          std::move(fitted).ValueOrDie());
      bench::Method method{util::StringPrintf("MarkovIF(beta=%.1f)", beta),
                           owner.get(), owner};
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow({method.name, eval::TextTable::Cell(acc.MaapAt(1)),
                    eval::TextTable::Cell(acc.MaapAt(5)),
                    eval::TextTable::Cell(acc.MaapAt(10))});
    }
    {
      baselines::FpmcConfig config;
      config.window_capacity = bundle.defaults.window_capacity;
      config.min_gap = bundle.defaults.min_gap;
      auto fitted = baselines::FpmcRecommender::Fit(*bundle.split, config);
      RECONSUME_CHECK(fitted.ok()) << fitted.status();
      auto owner = std::make_shared<baselines::FpmcRecommender>(
          std::move(fitted).ValueOrDie());
      bench::Method method{"FPMC", owner.get(), owner};
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow({"FPMC", eval::TextTable::Cell(acc.MaapAt(1)),
                    eval::TextTable::Cell(acc.MaapAt(5)),
                    eval::TextTable::Cell(acc.MaapAt(10))});
    }
    {
      auto method = bench::FitTsPpr(bundle, bench::MakeTsPprConfig(bundle));
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow({"TS-PPR", eval::TextTable::Cell(acc.MaapAt(1)),
                    eval::TextTable::Cell(acc.MaapAt(5)),
                    eval::TextTable::Cell(acc.MaapAt(10))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
