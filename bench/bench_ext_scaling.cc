// Extension: offline cost scaling (§5.6's training-cost discussion, made
// measurable) — training wall time and |D| as the trace grows, SGD step cost
// as K grows, and evaluation throughput with parallel user evaluation.

#include <cstdio>

#include "bench/common.h"
#include "util/stopwatch.h"

using namespace reconsume;

int main() {
  // Training cost vs dataset scale.
  {
    eval::TextTable table({"scale", "events", "|D|", "SGD steps", "train s",
                           "MaAP@10"});
    for (double scale : {0.2, 0.5, 1.0}) {
      auto bundle = bench::MakeBundle(data::GowallaLikeProfile(scale),
                                      eval::ExperimentDefaults::Gowalla());
      auto config = bench::MakeTsPprConfig(bundle);
      auto method = bench::FitTsPpr(bundle, config);
      const auto* ts = static_cast<const core::TsPpr*>(method.owner.get());
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow(
          {eval::TextTable::Cell(scale, 1),
           util::FormatWithCommas(bundle.dataset->num_interactions()),
           util::FormatWithCommas(ts->num_quadruples()),
           util::FormatWithCommas(ts->train_report().steps),
           eval::TextTable::Cell(ts->train_report().wall_seconds, 2),
           eval::TextTable::Cell(acc.MaapAt(10))});
    }
    std::printf("=== EXT: training cost vs trace scale (gowalla-like) ===\n%s\n",
                table.ToString().c_str());
  }

  // Evaluation throughput: serial vs parallel.
  {
    auto bundle = bench::MakeGowallaBundle();
    auto method = bench::FitTsPpr(bundle, bench::MakeTsPprConfig(bundle));
    eval::TextTable table({"threads", "eval s", "instances", "MaAP@10"});
    for (int threads : {1, 2, 4}) {
      eval::EvalOptions options;
      options.window_capacity = bundle.defaults.window_capacity;
      options.min_gap = bundle.defaults.min_gap;
      options.num_threads = threads;
      eval::Evaluator evaluator(bundle.split.get(), options);
      util::Stopwatch stopwatch;
      auto result = evaluator.Evaluate(method.recommender);
      RECONSUME_CHECK(result.ok()) << result.status();
      table.AddRow({std::to_string(threads),
                    eval::TextTable::Cell(stopwatch.ElapsedSeconds(), 3),
                    util::FormatWithCommas(result.ValueOrDie().num_instances),
                    eval::TextTable::Cell(result.ValueOrDie().MaapAt(10))});
    }
    std::printf("=== EXT: evaluation throughput (TS-PPR, gowalla-like) ===\n"
                "%s(aggregate metrics are thread-count invariant)\n\n",
                table.ToString().c_str());
  }
  return 0;
}
