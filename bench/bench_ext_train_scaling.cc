// Extension: Hogwild training scaling — wall-clock speedup and accuracy
// parity of the parallel TS-PPR trainer vs worker count, on the Gowalla-like
// profile (the ROADMAP "fast as the hardware allows" axis; see
// docs/training_internals.md for the mode's design).
//
// Expectations on a multi-core host: train wall time drops measurably by 4
// workers (>1.5x vs sequential) while MaAP@10 stays within noise of the
// num_threads=1 run. On a single hardware thread the speedup column
// degenerates to ~1x — the table reports whatever the machine provides,
// alongside the hardware_concurrency it saw.

#include <cstdio>
#include <thread>

#include "bench/common.h"

using namespace reconsume;

namespace {

struct Run {
  core::TrainReport report;
  double maap10 = 0.0;
  double r_tilde = 0.0;
};

Run FitWith(const bench::DatasetBundle& bundle, int threads,
            sampling::ShardStrategy strategy, const std::string& name) {
  auto config = bench::MakeTsPprConfig(bundle);
  config.train.num_threads = threads;
  config.train.shard_strategy = strategy;
  auto method = bench::FitTsPpr(bundle, config, name);
  const auto* ts = static_cast<const core::TsPpr*>(method.owner.get());
  Run run;
  run.report = ts->train_report();
  run.r_tilde = run.report.final_r_tilde;
  run.maap10 = bench::EvaluateMethod(bundle, &method).MaapAt(10);
  return run;
}

}  // namespace

int main() {
  auto bundle = bench::MakeGowallaBundle();
  bench::PrintHeader("EXT: Hogwild train scaling", bundle);
  std::printf("hardware_concurrency=%u\n\n",
              std::thread::hardware_concurrency());

  // Speedup curve: worker count vs wall clock, accuracy carried along.
  {
    eval::TextTable table({"threads", "SGD steps", "r~", "train s", "speedup",
                           "MaAP@10", "dMaAP vs 1t"});
    double base_seconds = 0.0, base_maap = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      const Run run = FitWith(bundle, threads,
                              sampling::ShardStrategy::kContiguous,
                              "TS-PPR/" + std::to_string(threads) + "t");
      if (threads == 1) {
        base_seconds = run.report.wall_seconds;
        base_maap = run.maap10;
      }
      table.AddRow(
          {std::to_string(threads),
           util::FormatWithCommas(run.report.steps),
           eval::TextTable::Cell(run.r_tilde, 3),
           eval::TextTable::Cell(run.report.wall_seconds, 2),
           eval::TextTable::Cell(
               run.report.wall_seconds > 0
                   ? base_seconds / run.report.wall_seconds
                   : 0.0,
               2),
           eval::TextTable::Cell(run.maap10),
           eval::TextTable::Cell(run.maap10 - base_maap)});
    }
    std::printf("=== wall-clock speedup + accuracy parity (kContiguous) ===\n"
                "%s\n",
                table.ToString().c_str());
  }

  // Shard-strategy comparison at a fixed worker count.
  {
    eval::TextTable table({"strategy", "SGD steps", "r~", "train s",
                           "MaAP@10"});
    const struct {
      sampling::ShardStrategy strategy;
      const char* name;
    } strategies[] = {{sampling::ShardStrategy::kContiguous, "contiguous"},
                      {sampling::ShardStrategy::kInterleaved, "interleaved"}};
    for (const auto& s : strategies) {
      const Run run = FitWith(bundle, 4, s.strategy,
                              std::string("TS-PPR/") + s.name);
      table.AddRow({s.name, util::FormatWithCommas(run.report.steps),
                    eval::TextTable::Cell(run.r_tilde, 3),
                    eval::TextTable::Cell(run.report.wall_seconds, 2),
                    eval::TextTable::Cell(run.maap10)});
    }
    std::printf("=== shard strategies at 4 workers ===\n%s"
                "(accuracy differences are run-to-run Hogwild noise)\n\n",
                table.ToString().c_str());
  }
  return 0;
}
