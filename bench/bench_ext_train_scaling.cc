// Extension: Hogwild training scaling — wall-clock speedup and accuracy
// parity of the parallel TS-PPR trainer vs worker count, on the Gowalla-like
// profile (the ROADMAP "fast as the hardware allows" axis; see
// docs/training_internals.md for the mode's design).
//
// Expectations on a multi-core host: train wall time drops measurably by 4
// workers (>1.5x vs sequential) while MaAP@10 stays within noise of the
// num_threads=1 run. On a single hardware thread the speedup column
// degenerates to ~1x — the table reports whatever the machine provides,
// alongside the hardware_concurrency it saw.
//
// Crash-safety flags (docs/robustness.md): --checkpoint-dir=<dir> makes each
// run write RCCK checkpoints into its own <dir> subdirectory (one per
// threads/strategy cell, since a checkpoint only resumes under the same
// worker count); --resume additionally continues each cell from its latest
// good checkpoint, so a killed benchmark re-run picks up where it stopped.

#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "core/checkpoint.h"
#include "util/flags.h"

using namespace reconsume;

namespace {

struct Run {
  core::TrainReport report;
  double maap10 = 0.0;
  double r_tilde = 0.0;
};

struct CheckpointFlags {
  std::string dir;   // empty = checkpointing off
  bool resume = false;
};

Run FitWith(const bench::DatasetBundle& bundle, int threads,
            sampling::ShardStrategy strategy, const std::string& name,
            const CheckpointFlags& ckpt) {
  auto config = bench::MakeTsPprConfig(bundle);
  config.train.num_threads = threads;
  config.train.shard_strategy = strategy;
  if (!ckpt.dir.empty()) {
    // One subdirectory per cell: resume requires the same worker count and
    // shard strategy, so cells must not share checkpoint streams.
    config.train.checkpoint_dir =
        ckpt.dir + "/" + std::to_string(threads) + "t_" +
        (strategy == sampling::ShardStrategy::kContiguous ? "contiguous"
                                                          : "interleaved");
    if (ckpt.resume) {
      auto latest = core::FindLatestGoodCheckpoint(config.train.checkpoint_dir);
      if (latest.ok()) {
        config.resume_from = latest.ValueOrDie();
        std::printf("[%s] resuming from %s\n", name.c_str(),
                    config.resume_from.c_str());
      }
    }
  }
  auto method = bench::FitTsPpr(bundle, config, name);
  const auto* ts = static_cast<const core::TsPpr*>(method.owner.get());
  Run run;
  run.report = ts->train_report();
  run.r_tilde = run.report.final_r_tilde;
  run.maap10 = bench::EvaluateMethod(bundle, &method).MaapAt(10);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = util::FlagSet::Parse(argc, argv);
  if (!flags_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags_result.status().ToString().c_str());
    return 2;
  }
  const util::FlagSet& flags = flags_result.ValueOrDie();
  CheckpointFlags ckpt;
  ckpt.dir = flags.GetString("checkpoint-dir", "").ValueOrDie();
  ckpt.resume = flags.GetBool("resume", false).ValueOrDie();
  const Status unused = flags.CheckNoUnusedFlags();
  if (!unused.ok()) {
    std::fprintf(stderr, "error: %s\n", unused.ToString().c_str());
    return 2;
  }

  auto bundle = bench::MakeGowallaBundle();
  bench::PrintHeader("EXT: Hogwild train scaling", bundle);
  std::printf("hardware_concurrency=%u\n\n",
              std::thread::hardware_concurrency());

  // Speedup curve: worker count vs wall clock, accuracy carried along.
  {
    eval::TextTable table({"threads", "SGD steps", "r~", "train s", "speedup",
                           "MaAP@10", "dMaAP vs 1t"});
    double base_seconds = 0.0, base_maap = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      const Run run = FitWith(bundle, threads,
                              sampling::ShardStrategy::kContiguous,
                              "TS-PPR/" + std::to_string(threads) + "t", ckpt);
      if (threads == 1) {
        base_seconds = run.report.wall_seconds;
        base_maap = run.maap10;
      }
      table.AddRow(
          {std::to_string(threads),
           util::FormatWithCommas(run.report.steps),
           eval::TextTable::Cell(run.r_tilde, 3),
           eval::TextTable::Cell(run.report.wall_seconds, 2),
           eval::TextTable::Cell(
               run.report.wall_seconds > 0
                   ? base_seconds / run.report.wall_seconds
                   : 0.0,
               2),
           eval::TextTable::Cell(run.maap10),
           eval::TextTable::Cell(run.maap10 - base_maap)});
    }
    std::printf("=== wall-clock speedup + accuracy parity (kContiguous) ===\n"
                "%s\n",
                table.ToString().c_str());
  }

  // Shard-strategy comparison at a fixed worker count.
  {
    eval::TextTable table({"strategy", "SGD steps", "r~", "train s",
                           "MaAP@10"});
    const struct {
      sampling::ShardStrategy strategy;
      const char* name;
    } strategies[] = {{sampling::ShardStrategy::kContiguous, "contiguous"},
                      {sampling::ShardStrategy::kInterleaved, "interleaved"}};
    for (const auto& s : strategies) {
      const Run run = FitWith(bundle, 4, s.strategy,
                              std::string("TS-PPR/") + s.name, ckpt);
      table.AddRow({s.name, util::FormatWithCommas(run.report.steps),
                    eval::TextTable::Cell(run.r_tilde, 3),
                    eval::TextTable::Cell(run.report.wall_seconds, 2),
                    eval::TextTable::Cell(run.maap10)});
    }
    std::printf("=== shard strategies at 4 workers ===\n%s"
                "(accuracy differences are run-to-run Hogwild noise)\n\n",
                table.ToString().c_str());
  }
  return 0;
}
