// Fig. 13: average online recommendation time for a single instance, per
// method (google-benchmark). The paper's ordering: Random/Pop/DYRC cheapest
// (one pass over the window), Recency close behind, FPMC mid (inner products),
// TS-PPR above the simple baselines (feature extraction + K-dim products),
// and Survival orders of magnitude slower (its return-time covariate rescans
// the user's whole consumption history per candidate).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "util/stopwatch.h"

using namespace reconsume;

namespace {

/// One frozen evaluation instance: window state + candidate set.
struct Instance {
  data::UserId user;
  window::WindowWalker walker;
  std::vector<data::ItemId> candidates;
};

struct LatencyFixture {
  bench::DatasetBundle bundle;
  std::vector<bench::Method> methods;
  std::vector<Instance> instances;
};

std::unique_ptr<LatencyFixture> g_fixture;

void CollectInstances(const bench::DatasetBundle& bundle, size_t max_instances,
                      std::vector<Instance>* out) {
  const data::Dataset& dataset = *bundle.dataset;
  for (size_t u = 0; u < dataset.num_users() && out->size() < max_instances;
       ++u) {
    const data::UserId user = static_cast<data::UserId>(u);
    const auto& seq = dataset.sequence(user);
    const size_t test_begin = bundle.split->split_point(user);
    window::WindowWalker walker(&seq, bundle.defaults.window_capacity);
    while (static_cast<size_t>(walker.step()) < test_begin) walker.Advance();
    while (!walker.Done() && out->size() < max_instances) {
      if (walker.NextIsEligibleRepeat(bundle.defaults.min_gap)) {
        Instance instance{user, walker, {}};
        walker.EligibleCandidates(bundle.defaults.min_gap,
                                  &instance.candidates);
        out->push_back(std::move(instance));
      }
      walker.Advance();
    }
  }
}

/// Histogram-based pre-pass: one timed scoring sweep per method through the
/// shared obs::Histogram API, so the latency distribution (p50/p99, not just
/// google-benchmark's mean) lands in --metrics-out / --json-out alongside
/// every other experiment's telemetry.
///
/// Each instance is timed as the minimum over kSweeps full passes of
/// kRepsPerSweep back-to-back repetitions (after one untimed warmup pass).
/// A single-shot timer makes the histogram's p99 a scheduler lottery — one
/// preemption lands in the tail bucket — and even min-of-R in one burst
/// loses to sustained contention. Spreading the repetitions across sweeps
/// that are minutes of instances apart isolates each instance's
/// deterministic cost, so the reported percentiles reflect the
/// candidate-set-size distribution the figure is actually about. The perf
/// CI gate compares these percentiles across commits, which only works if
/// they are stable run-to-run.
constexpr int kSweeps = 4;
constexpr int kRepsPerSweep = 4;

void RunHistogramPrepass(bench::BenchRun* run, const std::string& dataset) {
  for (auto& method : g_fixture->methods) {
    RC_TRACE_SPAN("bench/score_prepass");
    obs::Histogram* const hist = obs::MetricsRegistry::Global().GetHistogram(
        "bench.score_us." + method.name,
        obs::ExponentialBuckets(0.01, 2.0, 30));
    const size_t num_instances = g_fixture->instances.size();
    std::vector<double> best_us(num_instances,
                                std::numeric_limits<double>::infinity());
    std::vector<double> scores;
    util::Stopwatch stopwatch;
    for (size_t i = 0; i < num_instances; ++i) {  // warmup pass
      const Instance& instance = g_fixture->instances[i];
      scores.assign(instance.candidates.size(), 0.0);
      method.recommender->Score(instance.user, instance.walker,
                                instance.candidates, scores);
    }
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      for (size_t i = 0; i < num_instances; ++i) {
        const Instance& instance = g_fixture->instances[i];
        scores.assign(instance.candidates.size(), 0.0);
        for (int rep = 0; rep < kRepsPerSweep; ++rep) {
          stopwatch.Restart();
          method.recommender->Score(instance.user, instance.walker,
                                    instance.candidates, scores);
          best_us[i] = std::min(best_us[i], stopwatch.ElapsedMicros());
        }
      }
    }
    for (double us : best_us) hist->Observe(us);
    const obs::HistogramSnapshot snapshot = hist->Snapshot();
    run->AddValue(dataset, method.name + ".mean_us", snapshot.Mean());
    run->AddValue(dataset, method.name + ".p50_us", snapshot.Quantile(0.5));
    run->AddValue(dataset, method.name + ".p99_us", snapshot.Quantile(0.99));
  }
}

void BM_ScoreInstance(benchmark::State& state, bench::Method* method) {
  auto& instances = g_fixture->instances;
  std::vector<double> scores;
  size_t i = 0;
  for (auto _ : state) {
    const Instance& instance = instances[i];
    scores.assign(instance.candidates.size(), 0.0);
    method->recommender->Score(instance.user, instance.walker,
                               instance.candidates, scores);
    benchmark::DoNotOptimize(scores.data());
    i = (i + 1) % instances.size();
  }
  state.SetLabel(method->name);
}

}  // namespace

int main(int argc, char** argv) {
  // BenchRun reads the bench/observability flags; google-benchmark later
  // consumes its own --benchmark_* flags from the same argv.
  bench::BenchRun run("fig13_latency", argc, argv);
  g_fixture = std::make_unique<LatencyFixture>();
  g_fixture->bundle = bench::MakeGowallaBundle();
  bench::PrintHeader("Fig. 13: online recommendation latency",
                     g_fixture->bundle);
  g_fixture->methods =
      bench::FitAllMethods(g_fixture->bundle, /*include_ppr_static=*/false);
  CollectInstances(g_fixture->bundle, 200, &g_fixture->instances);
  RECONSUME_CHECK(!g_fixture->instances.empty());
  RunHistogramPrepass(&run, g_fixture->bundle.name);

  for (auto& method : g_fixture->methods) {
    benchmark::RegisterBenchmark(("ScoreInstance/" + method.name).c_str(),
                                 BM_ScoreInstance, &method)
        ->Unit(benchmark::kMicrosecond);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_fixture.reset();
  RECONSUME_CHECK_OK(run.Finish());
  return 0;
}
