// Fig. 13: average online recommendation time for a single instance, per
// method (google-benchmark). The paper's ordering: Random/Pop/DYRC cheapest
// (one pass over the window), Recency close behind, FPMC mid (inner products),
// TS-PPR above the simple baselines (feature extraction + K-dim products),
// and Survival orders of magnitude slower (its return-time covariate rescans
// the user's whole consumption history per candidate).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/common.h"

using namespace reconsume;

namespace {

/// One frozen evaluation instance: window state + candidate set.
struct Instance {
  data::UserId user;
  window::WindowWalker walker;
  std::vector<data::ItemId> candidates;
};

struct LatencyFixture {
  bench::DatasetBundle bundle;
  std::vector<bench::Method> methods;
  std::vector<Instance> instances;
};

std::unique_ptr<LatencyFixture> g_fixture;

void CollectInstances(const bench::DatasetBundle& bundle, size_t max_instances,
                      std::vector<Instance>* out) {
  const data::Dataset& dataset = *bundle.dataset;
  for (size_t u = 0; u < dataset.num_users() && out->size() < max_instances;
       ++u) {
    const data::UserId user = static_cast<data::UserId>(u);
    const auto& seq = dataset.sequence(user);
    const size_t test_begin = bundle.split->split_point(user);
    window::WindowWalker walker(&seq, bundle.defaults.window_capacity);
    while (static_cast<size_t>(walker.step()) < test_begin) walker.Advance();
    while (!walker.Done() && out->size() < max_instances) {
      if (walker.NextIsEligibleRepeat(bundle.defaults.min_gap)) {
        Instance instance{user, walker, {}};
        walker.EligibleCandidates(bundle.defaults.min_gap,
                                  &instance.candidates);
        out->push_back(std::move(instance));
      }
      walker.Advance();
    }
  }
}

void BM_ScoreInstance(benchmark::State& state, bench::Method* method) {
  auto& instances = g_fixture->instances;
  std::vector<double> scores;
  size_t i = 0;
  for (auto _ : state) {
    const Instance& instance = instances[i];
    scores.assign(instance.candidates.size(), 0.0);
    method->recommender->Score(instance.user, instance.walker,
                               instance.candidates, scores);
    benchmark::DoNotOptimize(scores.data());
    i = (i + 1) % instances.size();
  }
  state.SetLabel(method->name);
}

}  // namespace

int main(int argc, char** argv) {
  g_fixture = std::make_unique<LatencyFixture>();
  g_fixture->bundle = bench::MakeGowallaBundle();
  bench::PrintHeader("Fig. 13: online recommendation latency",
                     g_fixture->bundle);
  g_fixture->methods =
      bench::FitAllMethods(g_fixture->bundle, /*include_ppr_static=*/false);
  CollectInstances(g_fixture->bundle, 200, &g_fixture->instances);
  RECONSUME_CHECK(!g_fixture->instances.empty());

  for (auto& method : g_fixture->methods) {
    benchmark::RegisterBenchmark(("ScoreInstance/" + method.name).c_str(),
                                 BM_ScoreInstance, &method)
        ->Unit(benchmark::kMicrosecond);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_fixture.reset();
  return 0;
}
