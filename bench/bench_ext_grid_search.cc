// Extension: automated hyperparameter selection with nested validation —
// does a leak-free grid search land near the paper's hand-tuned Table 4
// values, and how does its pick fare on the real test segment?

#include <cstdio>

#include "bench/common.h"
#include "core/grid_search.h"

using namespace reconsume;

int main() {
  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("EXT: nested-validation grid search", bundle);

    core::GridSearchOptions grid;
    grid.latent_dims = {10, 40};
    grid.gammas = {0.01, 0.05, 0.1, 1.0};
    grid.lambdas = {0.001, 0.01, 0.1};
    auto search = core::GridSearchTsPpr(
        *bundle.split, bench::MakeTsPprConfig(bundle), grid);
    RECONSUME_CHECK(search.ok()) << search.status();
    const core::GridSearchResult& result = search.ValueOrDie();

    eval::TextTable trials({"K", "gamma", "lambda", "validation MaAP@10"});
    for (const auto& trial : result.trials) {
      trials.AddRow({std::to_string(trial.latent_dim),
                     eval::TextTable::Cell(trial.gamma, 3),
                     eval::TextTable::Cell(trial.lambda, 3),
                     eval::TextTable::Cell(trial.validation_maap)});
    }
    std::printf("%s\n", trials.ToString().c_str());
    std::printf("selected: K=%d gamma=%g lambda=%g (validation MaAP@10 "
                "%.4f); Table 4 hand-tuned: K=%d gamma=%g lambda=%g\n\n",
                result.best_config.model.latent_dim,
                result.best_config.model.gamma,
                result.best_config.model.lambda, result.best_validation_maap,
                bundle.defaults.latent_dim, bundle.defaults.gamma,
                bundle.defaults.lambda);

    // Refit the winner on the full training prefix; compare on the test set
    // against the Table 4 defaults.
    auto selected = bench::FitTsPpr(bundle, result.best_config,
                                    "TS-PPR (grid-selected)");
    auto hand_tuned = bench::FitTsPpr(bundle, bench::MakeTsPprConfig(bundle),
                                      "TS-PPR (Table 4)");
    const auto selected_acc = bench::EvaluateMethod(bundle, &selected);
    const auto hand_acc = bench::EvaluateMethod(bundle, &hand_tuned);
    std::printf("test MaAP@10: grid-selected %.4f vs Table-4 %.4f\n\n",
                selected_acc.MaapAt(10), hand_acc.MaapAt(10));
  }
  return 0;
}
