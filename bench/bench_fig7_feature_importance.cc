// Fig. 7: feature importance — retrain TS-PPR with each behavioral feature
// removed and compare MaAP@10 / MiAP@10 against the all-features model.
// The paper finds IR (item reconsumption ratio) costs the most when removed.
//
// Also covers DESIGN.md ablation #1: the recency kernel choice (hyperbolic
// Eq. 19 vs exponential Eq. 20).

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace reconsume;

int main() {
  const std::vector<features::FeatureConfig> configs = {
      features::FeatureConfig::AllFeatures(),
      features::FeatureConfig::WithoutItemQuality(),
      features::FeatureConfig::WithoutReconsumptionRatio(),
      features::FeatureConfig::WithoutRecency(),
      features::FeatureConfig::WithoutFamiliarity(),
  };

  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("Fig. 7: feature importance (TS-PPR ablation)", bundle);
    eval::TextTable table(
        {"features", "F", "MaAP@10", "MiAP@10", "MaAP@5", "MiAP@5"});
    for (const auto& feature_config : configs) {
      auto config = bench::MakeTsPprConfig(bundle);
      config.features = feature_config;
      auto method =
          bench::FitTsPpr(bundle, config, "TS-PPR " + feature_config.Label());
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow({feature_config.Label(),
                    std::to_string(feature_config.dimension()),
                    eval::TextTable::Cell(acc.MaapAt(10)),
                    eval::TextTable::Cell(acc.MiapAt(10)),
                    eval::TextTable::Cell(acc.MaapAt(5)),
                    eval::TextTable::Cell(acc.MiapAt(5))});
    }
    std::printf("%s\n", table.ToString().c_str());

    // Recency-kernel ablation (DESIGN.md #1).
    eval::TextTable kernels({"recency kernel", "MaAP@10", "MiAP@10"});
    for (auto kernel : {features::RecencyKernel::kHyperbolic,
                        features::RecencyKernel::kExponential}) {
      auto config = bench::MakeTsPprConfig(bundle);
      config.features.recency_kernel = kernel;
      auto method = bench::FitTsPpr(bundle, config);
      const auto acc = bench::EvaluateMethod(bundle, &method);
      kernels.AddRow(
          {kernel == features::RecencyKernel::kHyperbolic ? "hyperbolic (Eq.19)"
                                                          : "exponential (Eq.20)",
           eval::TextTable::Cell(acc.MaapAt(10)),
           eval::TextTable::Cell(acc.MiapAt(10))});
    }
    std::printf("%s\n", kernels.ToString().c_str());
  }
  return 0;
}
