// Table 5: the holistic STREC + TS-PPR pipeline of §5.7. STREC (linear Lasso
// on window-level behavioral features) classifies repeat-vs-novel at each
// step; TS-PPR recommends on the true repeats STREC flags; joint accuracy is
// the product of the two stages.

#include <cstdio>

#include "bench/common.h"
#include "strec/combined_pipeline.h"
#include "strec/strec_classifier.h"

using namespace reconsume;

int main() {
  eval::TextTable table({"Data Set", "STREC acc", "MaAP@1", "MaAP@5",
                         "MaAP@10", "joint MaAP@10"});
  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("Table 5: STREC + TS-PPR combination", bundle);

    strec::StrecOptions strec_options;
    strec_options.window_capacity = bundle.defaults.window_capacity;
    auto classifier = strec::StrecClassifier::Fit(
        *bundle.split, bundle.table.get(), strec_options);
    RECONSUME_CHECK(classifier.ok()) << classifier.status();

    auto ts_method = bench::FitTsPpr(bundle, bench::MakeTsPprConfig(bundle));
    auto* ts_ppr = static_cast<core::TsPpr*>(ts_method.owner.get());

    eval::EvalOptions options;
    options.window_capacity = bundle.defaults.window_capacity;
    options.min_gap = bundle.defaults.min_gap;
    auto combined = strec::EvaluateCombined(*bundle.split,
                                            classifier.ValueOrDie(), ts_ppr,
                                            options);
    RECONSUME_CHECK(combined.ok()) << combined.status();
    const auto& r = combined.ValueOrDie();

    std::printf("STREC test accuracy: %.4f (TP=%lld FP=%lld TN=%lld "
                "FN=%lld)\n\n",
                r.classifier.accuracy(),
                static_cast<long long>(r.classifier.true_positives),
                static_cast<long long>(r.classifier.false_positives),
                static_cast<long long>(r.classifier.true_negatives),
                static_cast<long long>(r.classifier.false_negatives));
    table.AddRow({bundle.name, eval::TextTable::Cell(r.classifier.accuracy()),
                  eval::TextTable::Cell(r.conditional.MaapAt(1)),
                  eval::TextTable::Cell(r.conditional.MaapAt(5)),
                  eval::TextTable::Cell(r.conditional.MaapAt(10)),
                  eval::TextTable::Cell(r.JointMaapAt(10))});
  }
  std::printf("=== Table 5 summary ===\n%s\n", table.ToString().c_str());
  return 0;
}
