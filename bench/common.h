// Shared experiment harness for the per-table/per-figure bench binaries.
//
// Builds the two dataset profiles (Gowalla-like, Lastfm-like), fits every
// method of §5.2 plus TS-PPR, and provides the evaluation plumbing each bench
// repeats. Scale is controlled by the RECONSUME_SCALE environment variable
// (default 0.5; ~27k events per dataset) so the same binaries run both as CI
// smoke checks and as fuller reproductions.

#ifndef RECONSUME_BENCH_COMMON_H_
#define RECONSUME_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/dyrc.h"
#include "baselines/fpmc.h"
#include "baselines/simple_recommenders.h"
#include "baselines/survival_recommender.h"
#include "core/ppr.h"
#include "core/ts_ppr.h"
#include "data/dataset_stats.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/experiment_defaults.h"
#include "eval/table.h"
#include "features/static_features.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace reconsume {
namespace bench {

/// Reads RECONSUME_SCALE (default 0.5).
double GetScale();

/// Reads RECONSUME_TRAIN_THREADS (default 1 — the exact sequential trainer).
/// Values > 1 switch every TS-PPR fit in the bench harness to Hogwild
/// training; aggregate metrics then vary within run-to-run noise.
int GetTrainThreads();

/// \brief A ready-to-experiment dataset: filtered data, split, feature table,
/// and the paper's per-dataset defaults (Table 4).
struct DatasetBundle {
  std::string name;
  eval::ExperimentDefaults defaults;
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;
};

/// Generates, filters, splits, and tabulates one profile. Dies on error
/// (bench binaries have no recovery path).
DatasetBundle MakeBundle(const data::SyntheticProfile& profile,
                         const eval::ExperimentDefaults& defaults);

/// The two paper datasets at the ambient scale.
DatasetBundle MakeGowallaBundle();
DatasetBundle MakeLastfmBundle();
/// Both, in paper order (Gowalla first); convenient for range-for loops.
std::vector<DatasetBundle> MakeBothBundles();

/// TS-PPR pipeline config from a bundle's defaults.
core::TsPprPipelineConfig MakeTsPprConfig(const DatasetBundle& bundle);

/// \brief Owns one fitted method of the §5.2 comparison.
struct Method {
  std::string name;
  eval::Recommender* recommender = nullptr;  // view into `owner`
  std::shared_ptr<void> owner;
};

/// Fits all 7 paper methods (Random, Pop, Recency, FPMC, Survival, DYRC,
/// TS-PPR). `include_ppr_static` adds the plain-BPR ablation as an 8th row.
std::vector<Method> FitAllMethods(const DatasetBundle& bundle,
                                  bool include_ppr_static = false);

/// Fits only TS-PPR with an externally tweaked config (parameter sweeps).
Method FitTsPpr(const DatasetBundle& bundle,
                const core::TsPprPipelineConfig& config,
                std::string name = "TS-PPR");

/// Evaluator with the bundle's protocol constants (optionally overriding
/// Omega for the Fig. 11 sweep).
eval::AccuracyResult EvaluateMethod(const DatasetBundle& bundle, Method* method,
                                    int min_gap_override = -1,
                                    bool measure_latency = false);

/// Prints the standard bench header (experiment id + Table 4 defaults).
void PrintHeader(const std::string& experiment, const DatasetBundle& bundle);

/// \brief Standard run wrapper for bench binaries: common observability flags
/// plus a machine-readable results document with a stable schema.
///
/// Flags (all optional):
///   --json-out=r.json        standardized results document (schema below)
///   --metrics-out/--trace-out/--events-out/--progress-every
///                            the obs::TelemetryConfigFromFlags set
///
/// The results document:
///   {"schema": "reconsume.bench.v1",
///    "experiment": "<id>",
///    "results": [{"dataset": "<name>", "values": {"<key>": <number>, ...}}]}
///
/// Keys keep AddValue order within a dataset; datasets keep first-seen order.
/// Dies on malformed flags (bench binaries have no recovery path).
class BenchRun {
 public:
  BenchRun(std::string experiment, int argc, const char* const* argv);
  ~BenchRun();  ///< best-effort Finish
  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  /// Records one scalar under `dataset` (repeated keys overwrite).
  void AddValue(const std::string& dataset, const std::string& key,
                double value);

  /// The standardized document for the values recorded so far.
  std::string ToJson() const;

  /// Writes --json-out and closes the telemetry session. Idempotent.
  Status Finish();

 private:
  struct DatasetResults {
    std::string dataset;
    std::vector<std::pair<std::string, double>> values;
  };
  std::string experiment_;
  std::string json_path_;
  std::vector<DatasetResults> results_;
  obs::TelemetrySession session_;
  bool finished_ = false;
};

}  // namespace bench
}  // namespace reconsume

#endif  // RECONSUME_BENCH_COMMON_H_
