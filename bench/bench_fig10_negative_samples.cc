// Fig. 10: sensitivity of TS-PPR to the number of pre-sampled negatives S
// per positive, under two minimum-gap settings (Omega = 10, 20). The paper
// finds a slight uptrend on Gowalla and a flat curve on Lastfm, and keeps
// S = 10 to bound pre-sampling cost.

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace reconsume;

int main() {
  const std::vector<int> sample_counts = {1, 5, 10, 15, 20};

  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("Fig. 10: negative-sample count sensitivity", bundle);
    for (int omega : {10, 20}) {
      eval::TextTable table({"S", "|D|", "MaAP@10", "MiAP@10"});
      for (int s : sample_counts) {
        auto config = bench::MakeTsPprConfig(bundle);
        config.sampling.negatives_per_positive = s;
        config.sampling.min_gap = omega;
        auto method = bench::FitTsPpr(bundle, config);
        const auto* ts = static_cast<const core::TsPpr*>(method.owner.get());
        const auto acc = bench::EvaluateMethod(bundle, &method, omega);
        table.AddRow({std::to_string(s),
                      util::FormatWithCommas(ts->num_quadruples()),
                      eval::TextTable::Cell(acc.MaapAt(10)),
                      eval::TextTable::Cell(acc.MiapAt(10))});
      }
      std::printf("Omega=%d:\n%s\n", omega, table.ToString().c_str());
    }
  }
  return 0;
}
