// Extension benches for §4.3 and §6 of the paper:
//   (a) TS-PPR on the *novel-item* task (pre-sampled catalog negatives),
//       against Random and Pop under the catalog-wide protocol;
//   (b) the STREC-gated repeat/novel mixture on the unified next-item task,
//       against each specialist alone — the paper's stated future work.

#include <cstdio>

#include "bench/common.h"
#include "strec/mixture_recommender.h"
#include "strec/strec_classifier.h"

using namespace reconsume;

namespace {

eval::AccuracyResult Evaluate(const bench::DatasetBundle& bundle,
                              eval::Recommender* method, eval::EvalTask task) {
  eval::EvalOptions options;
  options.window_capacity = bundle.defaults.window_capacity;
  options.min_gap = bundle.defaults.min_gap;
  options.task = task;
  eval::Evaluator evaluator(bundle.split.get(), options);
  auto result = evaluator.Evaluate(method);
  RECONSUME_CHECK(result.ok()) << result.status();
  return std::move(result).ValueOrDie();
}

void Run(const bench::DatasetBundle& bundle) {
  bench::PrintHeader("EXT: novel-item task + repeat/novel mixture", bundle);

  // Specialists.
  auto repeat_config = bench::MakeTsPprConfig(bundle);
  auto repeat_model = bench::FitTsPpr(bundle, repeat_config, "TS-PPR(repeat)");
  auto novel_config = bench::MakeTsPprConfig(bundle);
  novel_config.sampling.task = sampling::TrainingTask::kNovel;
  auto novel_model = bench::FitTsPpr(bundle, novel_config, "TS-PPR(novel)");

  baselines::RandomRecommender random_rec;
  baselines::PopRecommender pop(bundle.table.get());

  // (a) novel-item task.
  eval::TextTable novel_table(
      {"method", "MaAP@1", "MaAP@10", "mean candidates"});
  struct Row {
    const char* label;
    eval::Recommender* method;
  };
  for (const Row& row : {Row{"Random", &random_rec}, Row{"Pop", &pop},
                         Row{"TS-PPR(novel)", novel_model.recommender}}) {
    const auto acc = Evaluate(bundle, row.method, eval::EvalTask::kNovel);
    novel_table.AddRow({row.label, eval::TextTable::Cell(acc.MaapAt(1)),
                        eval::TextTable::Cell(acc.MaapAt(10)),
                        eval::TextTable::Cell(acc.mean_candidates, 1)});
  }
  std::printf("novel-item recommendation (section 4.3 extension):\n%s\n",
              novel_table.ToString().c_str());

  // (b) unified next-item task with the STREC-gated mixture.
  strec::StrecOptions strec_options;
  strec_options.window_capacity = bundle.defaults.window_capacity;
  auto classifier_result = strec::StrecClassifier::Fit(
      *bundle.split, bundle.table.get(), strec_options);
  RECONSUME_CHECK(classifier_result.ok()) << classifier_result.status();
  const strec::StrecClassifier classifier =
      std::move(classifier_result).ValueOrDie();
  strec::MixtureRecommender mixture(&classifier, repeat_model.recommender,
                                    novel_model.recommender);

  eval::TextTable unified_table({"method", "MaAP@1", "MaAP@10"});
  for (const Row& row :
       {Row{"Pop", &pop}, Row{"TS-PPR(repeat) alone", repeat_model.recommender},
        Row{"TS-PPR(novel) alone", novel_model.recommender},
        Row{"Mixture(STREC)", &mixture}}) {
    const auto acc = Evaluate(bundle, row.method, eval::EvalTask::kUnified);
    unified_table.AddRow({row.label, eval::TextTable::Cell(acc.MaapAt(1)),
                          eval::TextTable::Cell(acc.MaapAt(10))});
  }
  std::printf("unified next-item stream (section 6 future work):\n%s\n",
              unified_table.ToString().c_str());
}

}  // namespace

int main() {
  Run(bench::MakeGowallaBundle());
  Run(bench::MakeLastfmBundle());
  return 0;
}
