// Fig. 11: sensitivity of TS-PPR to the minimum gap Omega (training and
// evaluation both restrict to repeats older than Omega steps). The paper
// observes a downtrend on Gowalla (strong recency regime: recent repeats are
// the easy ones) and an uptrend on Lastfm (the candidate set |W| - Omega
// shrinks).

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace reconsume;

int main() {
  const std::vector<int> omegas = {5, 10, 15, 20, 25};

  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("Fig. 11: minimum-gap sensitivity", bundle);
    for (int s : {10, 20}) {
      eval::TextTable table({"Omega", "instances", "MaAP@10", "MiAP@10"});
      for (int omega : omegas) {
        auto config = bench::MakeTsPprConfig(bundle);
        config.sampling.min_gap = omega;
        config.sampling.negatives_per_positive = s;
        auto method = bench::FitTsPpr(bundle, config);
        const auto acc = bench::EvaluateMethod(bundle, &method, omega);
        table.AddRow({std::to_string(omega),
                      util::FormatWithCommas(acc.num_instances),
                      eval::TextTable::Cell(acc.MaapAt(10)),
                      eval::TextTable::Cell(acc.MiapAt(10))});
      }
      std::printf("S=%d:\n%s\n", s, table.ToString().c_str());
    }
  }
  return 0;
}
