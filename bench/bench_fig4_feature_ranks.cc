// Fig. 4: distribution of repeat consumptions by the rank of the reconsumed
// item in its time window under each behavioral feature (|W|=100, Omega=10).
// Steeper (head-heavier) distributions = more discriminative features; the
// paper's Gowalla curves are steeper than the Lastfm ones, which is why the
// TS-PPR margin is larger there.

#include <cstdio>

#include "bench/common.h"
#include "features/feature_ranks.h"

using namespace reconsume;

int main() {
  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("Fig. 4: feature-rank distributions", bundle);
    auto report = features::ComputeFeatureRanks(
        *bundle.split, bundle.defaults.window_capacity,
        bundle.defaults.min_gap);
    RECONSUME_CHECK(report.ok()) << report.status();
    const auto& r = report.ValueOrDie();
    std::printf("eligible repeat events: %lld\n\n",
                static_cast<long long>(r.num_events));
    for (int f = 0; f < 4; ++f) {
      std::printf("%s\n", features::FormatRankHistogram(r, f, 15).c_str());
    }
  }
  return 0;
}
