// Load generator for the serving layer (docs/serving.md): client threads
// replay a synthetic repeat-heavy trace against RecommendService as mixed
// recommend/observe traffic and report QPS, tail latency, and the measured
// ScoreCache hit rate.
//
// Two modes:
//
//   * Closed loop (default): each client waits for its response before
//     issuing the next request. Producers feel queue backpressure; nothing
//     sheds. The traffic model makes cache behaviour observable on purpose:
//     each client draws users from a small hot pool and turns every
//     --observe-every-th request into an Observe (which bumps the epoch and
//     forces the next recommend for that user to re-score).
//
//   * --overload: open-window chaos mode (docs/serving.md §8.6). Clients
//     keep ~2x the queue capacity in flight with per-request deadlines, so
//     admission control and the degradation ladder actually engage; a
//     mid-load hot-swap (including one failpoint-forced rollback) runs
//     under full traffic. The bench asserts the resilience contract: every
//     future resolves (ok / degraded / shed / deadline — never a hang,
//     never an uncategorized error).
//
// Request tracing (docs/observability.md, "Request tracing"):
// --trace-sample=R (default: the RECONSUME_TRACE_SAMPLE env var) arms the
// tail sampler at ordinary-retention rate R for the measured run; pair with
// --trace-out/--events-out to export the stitched per-request trace.
// --trace-overhead prepends two extra passes — tracing fully off vs span
// recording at 100% retention — and reports the p99 cost of tracing.
//
//   ./bench_serve_load [--requests=12000 --serve-threads=4 --clients=8
//                       --top-n=10 --observe-every=8 --hot-users=64
//                       --cache-capacity=4096 --queue-capacity=1024
//                       --overload --timeout-us=50000 --enqueue-timeout-us=2000
//                       --shed-watermark=0.9 --max-queue-delay-us=0
//                       --swap-mid-load --trace-sample=0.05 --trace-overhead
//                       --json-out=r.json]
//
// JSON keys (reconsume.bench.v1): requests, serve_threads, clients, qps,
// p50_us, p99_us, p999_us, cache_hit_rate, cache_hits, cache_misses,
// sessions, ok, degraded, shed, deadline, shed_rate, degraded_rate,
// deadline_rate, model_swaps, model_rollbacks, overload, trace_sample,
// traces_retained, traces_dropped, slo_availability_burn,
// slo_latency_burn; with --trace-overhead also trace_off_p99_us,
// trace_on_p99_us, trace_overhead_ratio.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "obs/tail_sampler.h"
#include "serve/server.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stopwatch.h"

using namespace reconsume;

namespace {

struct LoadFlags {
  int64_t requests = 12000;
  int64_t serve_threads = 4;
  int64_t clients = 8;
  int64_t top_n = 10;
  int64_t observe_every = 8;  ///< 1 observe per this many requests (0 = none)
  int64_t hot_users = 64;     ///< pool each client draws users from
  int64_t cache_capacity = 4096;
  int64_t queue_capacity = 1024;
  bool overload = false;       ///< open-window 2x-saturation chaos mode
  int64_t timeout_us = 50000;  ///< per-request deadline in overload mode
  int64_t enqueue_timeout_us = 2000;
  double shed_watermark = 0.9;
  int64_t max_queue_delay_us = 0;
  bool swap_mid_load = true;  ///< hot-swap (plus a forced rollback) mid-run
  /// Tail-sampling rate for the measured run (< 0 = sampler untouched).
  /// Default comes from RECONSUME_TRACE_SAMPLE; the flag overrides it.
  double trace_sample = -1.0;
  bool trace_overhead = false;  ///< measure p99 with tracing off vs 100%
};

LoadFlags ReadLoadFlags(const util::FlagSet& flags) {
  LoadFlags out;
  out.requests = flags.GetInt("requests", out.requests).ValueOrDie();
  out.serve_threads =
      flags.GetInt("serve-threads", out.serve_threads).ValueOrDie();
  out.clients = flags.GetInt("clients", out.clients).ValueOrDie();
  out.top_n = flags.GetInt("top-n", out.top_n).ValueOrDie();
  out.observe_every =
      flags.GetInt("observe-every", out.observe_every).ValueOrDie();
  out.hot_users = flags.GetInt("hot-users", out.hot_users).ValueOrDie();
  out.cache_capacity =
      flags.GetInt("cache-capacity", out.cache_capacity).ValueOrDie();
  out.queue_capacity =
      flags.GetInt("queue-capacity", out.queue_capacity).ValueOrDie();
  out.overload = flags.GetBool("overload", out.overload).ValueOrDie();
  out.timeout_us = flags.GetInt("timeout-us", out.timeout_us).ValueOrDie();
  out.enqueue_timeout_us =
      flags.GetInt("enqueue-timeout-us", out.enqueue_timeout_us).ValueOrDie();
  out.shed_watermark =
      flags.GetDouble("shed-watermark", out.shed_watermark).ValueOrDie();
  out.max_queue_delay_us =
      flags.GetInt("max-queue-delay-us", out.max_queue_delay_us).ValueOrDie();
  out.swap_mid_load =
      flags.GetBool("swap-mid-load", out.swap_mid_load).ValueOrDie();
  out.trace_sample =
      flags.GetDouble("trace-sample", obs::TraceSampleRateFromEnv(-1.0))
          .ValueOrDie();
  out.trace_overhead =
      flags.GetBool("trace-overhead", out.trace_overhead).ValueOrDie();
  RECONSUME_CHECK(out.requests >= 1 && out.serve_threads >= 1 &&
                  out.clients >= 1 && out.top_n >= 1 && out.hot_users >= 1)
      << "all load-generator sizes must be >= 1";
  return out;
}

/// Per-bench outcome tally; every issued request lands in exactly one bucket.
struct Outcomes {
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> degraded{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> deadline{0};
  std::atomic<int64_t> error{0};
  std::atomic<int64_t> hung{0};  ///< future unresolved after the grace wait
};

void Categorize(std::future<serve::ServeResponse>& future, Outcomes* out) {
  // Resilience contract: every future resolves. The generous grace wait only
  // exists so a violation becomes a counted `hung` instead of a stuck bench.
  if (future.wait_for(std::chrono::seconds(30)) !=
      std::future_status::ready) {
    out->hung.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const serve::ServeResponse response = future.get();
  if (response.status.ok()) {
    if (response.degraded) {
      out->degraded.fetch_add(1, std::memory_order_relaxed);
    } else {
      out->ok.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (response.status.code() == StatusCode::kUnavailable) {
    out->shed.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
    out->deadline.fetch_add(1, std::memory_order_relaxed);
  } else {
    out->error.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Everything one pass of the load produces; plain values so the overhead
/// passes and the measured pass share the same plumbing.
struct PassResult {
  double seconds = 0;
  double qps = 0;
  obs::HistogramSnapshot latency;
  serve::ScoreCacheStats cache;
  serve::ResilienceStats resilience;
  std::vector<obs::SloSnapshot> slos;
  size_t sessions = 0;
  int64_t model_epoch = 0;
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t shed = 0;
  int64_t deadline = 0;
  int64_t error = 0;
  int64_t hung = 0;
  int64_t served = 0;
};

/// One full load pass against a fresh service. `trace_sample` feeds
/// ServeConfig::trace_sample (the service arms the global sampler when
/// >= 0); `allow_swap` gates the mid-load hot-swap (the overhead passes
/// skip it so the A/B p99s compare pure serve-path cost).
PassResult RunLoad(const bench::DatasetBundle& bundle,
                   const bench::Method& method, const LoadFlags& load,
                   double trace_sample, bool allow_swap) {
  serve::ServeConfig config;
  config.num_threads = static_cast<int>(load.serve_threads);
  config.queue_capacity = static_cast<size_t>(load.queue_capacity);
  config.cache_capacity = static_cast<size_t>(load.cache_capacity);
  config.window_capacity = bundle.defaults.window_capacity;
  config.min_gap = bundle.defaults.min_gap;
  config.trace_sample = trace_sample;
  if (load.overload) {
    config.resilience.enqueue_timeout_us = load.enqueue_timeout_us;
    config.resilience.shed_watermark = load.shed_watermark;
    config.resilience.max_queue_delay_us = load.max_queue_delay_us;
  }
  serve::RecommendService service(
      bundle.dataset.get(),
      std::shared_ptr<eval::Recommender>(method.owner, method.recommender),
      config);

  // The hot pool: the first users with a non-trivial history, shared by all
  // clients so their queries overlap (that overlap is what the cache serves).
  const size_t num_users = bundle.dataset->num_users();
  std::vector<data::UserId> hot;
  for (size_t u = 0; u < num_users && hot.size() <
       static_cast<size_t>(load.hot_users); ++u) {
    if (bundle.dataset->sequence(static_cast<data::UserId>(u)).size() >= 8) {
      hot.push_back(static_cast<data::UserId>(u));
    }
  }
  RECONSUME_CHECK(!hot.empty()) << "no users with enough history";

  // Open-window sizing: together the clients keep ~2x the queue capacity in
  // flight, the "2x saturation" point the resilience gate is specified at.
  const size_t max_inflight = std::max<size_t>(
      1, 2 * static_cast<size_t>(load.queue_capacity) /
             static_cast<size_t>(load.clients));
  serve::RequestOptions options;
  if (load.overload) options.timeout_us = load.timeout_us;

  Outcomes outcomes;
  std::atomic<int64_t> issued{0};
  util::Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(load.clients));
  for (int64_t c = 0; c < load.clients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(0xBEEFu + static_cast<uint64_t>(c));
      std::deque<std::future<serve::ServeResponse>> inflight;
      while (true) {
        const int64_t seq = issued.fetch_add(1, std::memory_order_relaxed);
        if (seq >= load.requests) break;
        const data::UserId user = hot[rng.Uniform(hot.size())];
        const bool observe =
            load.observe_every > 0 && seq % load.observe_every == 0;
        std::future<serve::ServeResponse> future;
        if (observe) {
          // Re-consume something the user already consumed: repeat traffic.
          const auto& seq_u = bundle.dataset->sequence(user);
          const data::ItemId item = seq_u[rng.Uniform(seq_u.size())];
          future = service.Observe(user, item, options);
        } else {
          future =
              service.Recommend(user, static_cast<int>(load.top_n), options);
        }
        if (!load.overload) {
          // Closed loop: wait in place, keep exactly one in flight.
          Categorize(future, &outcomes);
          continue;
        }
        inflight.push_back(std::move(future));
        while (inflight.size() > max_inflight) {
          Categorize(inflight.front(), &outcomes);
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        Categorize(inflight.front(), &outcomes);
        inflight.pop_front();
      }
    });
  }

  // Mid-load hot-swap: once a third of the traffic is in, force one
  // validation rollback (old model keeps serving), then land a real swap
  // while the clients keep hammering the service.
  std::thread swapper;
  if (load.overload && allow_swap) {
    swapper = std::thread([&] {
      while (issued.load(std::memory_order_relaxed) < load.requests / 3) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      auto refit = bench::FitTsPpr(bundle, bench::MakeTsPprConfig(bundle));
      std::shared_ptr<eval::Recommender> candidate(refit.owner,
                                                   refit.recommender);
#if RECONSUME_FAILPOINTS_ENABLED
      {
        util::ScopedFailpoint fp("serve/swap_validate", "error-once");
        auto rolled_back = service.SwapModel(candidate, "tsppr-reject");
        RECONSUME_CHECK(!rolled_back.ok())
            << "forced validation failure did not roll back";
      }
#endif
      auto swapped = service.SwapModel(candidate, "tsppr-v2");
      RECONSUME_CHECK(swapped.ok()) << swapped.status();
      std::printf("mid-load swap landed at model epoch %lld\n",
                  static_cast<long long>(swapped.ValueOrDie()));
    });
  }

  for (std::thread& t : clients) t.join();
  if (swapper.joinable()) swapper.join();
  PassResult result;
  result.seconds = wall.ElapsedSeconds();
  service.Shutdown();

  result.qps = result.seconds > 0
                   ? static_cast<double>(load.requests) / result.seconds
                   : 0.0;
  result.latency = service.LatencySnapshot();
  result.cache = service.cache_stats();
  result.resilience = service.resilience_stats();
  result.slos = service.SloSnapshots();
  result.sessions = service.num_sessions();
  result.model_epoch = service.model_epoch();
  result.ok = outcomes.ok.load();
  result.degraded = outcomes.degraded.load();
  result.shed = outcomes.shed.load();
  result.deadline = outcomes.deadline.load();
  result.error = outcomes.error.load();
  result.hung = outcomes.hung.load();
  result.served = service.requests_served();
  return result;
}

/// Asserts the resilience contract on one pass's outcomes.
void CheckContract(const LoadFlags& load, const PassResult& pass) {
  // The contract both modes enforce: no hangs, no uncategorized errors.
  // Sheds and deadline misses are legal only under --overload.
  RECONSUME_CHECK(pass.hung == 0) << pass.hung << " requests never resolved";
  RECONSUME_CHECK(pass.error == 0)
      << pass.error << " requests failed outside the "
      << "shed/deadline/degraded contract";
  if (!load.overload) {
    RECONSUME_CHECK(pass.shed == 0 && pass.deadline == 0)
        << "closed-loop traffic must not shed or miss deadlines";
  }
  RECONSUME_CHECK(pass.served >= load.requests)
      << "served " << pass.served << " of " << load.requests;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run("serve_load", argc, argv);
  auto flags = util::FlagSet::Parse(argc, argv);
  RECONSUME_CHECK(flags.ok()) << flags.status();
  const LoadFlags load = ReadLoadFlags(flags.ValueOrDie());

  auto bundle = bench::MakeGowallaBundle();
  bench::PrintHeader("serve_load", bundle);
  auto method = bench::FitTsPpr(bundle, bench::MakeTsPprConfig(bundle));

  // Tracing-overhead A/B (runs BEFORE the measured pass so a recorder reset
  // cannot eat the measured pass's spans): same workload once with tracing
  // fully off, once with spans on and 100% retention. Order matters: the
  // off pass runs first because its requests are untraced (no trace ids in
  // the event stream), and when this run exports a trace (--trace-out armed
  // the recorder) the on pass's spans and sampler verdicts are deliberately
  // NOT cleared afterwards — its request_done events already carry
  // trace_retained, so wiping the spans would break the exported artifacts'
  // integrity contract (tools/validate_telemetry.py
  // --require-trace-integrity).
  double trace_off_p99 = 0;
  double trace_on_p99 = 0;
  if (load.trace_overhead) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    obs::TraceTailSampler& sampler = obs::TraceTailSampler::Global();
    const bool exporting = recorder.enabled();

    recorder.Disable();
    sampler.Disable();
    const PassResult off = RunLoad(bundle, method, load,
                                   /*trace_sample=*/-1.0,
                                   /*allow_swap=*/false);
    CheckContract(load, off);
    trace_off_p99 = off.latency.Quantile(0.99);

    recorder.Enable();
    const PassResult on = RunLoad(bundle, method, load,
                                  /*trace_sample=*/1.0,
                                  /*allow_swap=*/false);
    CheckContract(load, on);
    trace_on_p99 = on.latency.Quantile(0.99);

    if (!exporting) {
      // Nothing exports this run's spans: scrub the A/B state entirely so
      // the measured pass starts from the pre-overhead baseline.
      recorder.Disable();
      recorder.Clear();
      sampler.Disable();
      sampler.Clear();
    }
    std::printf("trace overhead: p99 off %.1fus on %.1fus (x%.3f)\n",
                trace_off_p99, trace_on_p99,
                trace_off_p99 > 0 ? trace_on_p99 / trace_off_p99 : 0.0);
  }

  // Sampler counters are process-global and may include the overhead
  // passes; report the measured pass as a delta.
  const obs::TailSamplerStats stats_before =
      obs::TraceTailSampler::Global().stats();
  const PassResult pass =
      RunLoad(bundle, method, load, load.trace_sample, load.swap_mid_load);
  CheckContract(load, pass);
  const obs::TailSamplerStats stats_after =
      obs::TraceTailSampler::Global().stats();
  obs::TailSamplerStats sampler_stats;
  sampler_stats.considered = stats_after.considered - stats_before.considered;
  sampler_stats.retained_forced =
      stats_after.retained_forced - stats_before.retained_forced;
  sampler_stats.retained_slow =
      stats_after.retained_slow - stats_before.retained_slow;
  sampler_stats.retained_sampled =
      stats_after.retained_sampled - stats_before.retained_sampled;
  sampler_stats.dropped = stats_after.dropped - stats_before.dropped;

  const double total = static_cast<double>(load.requests);
  const double shed_rate = static_cast<double>(pass.shed) / total;
  const double degraded_rate = static_cast<double>(pass.degraded) / total;
  const double deadline_rate = static_cast<double>(pass.deadline) / total;

  std::printf("replayed %s requests (%s clients -> %s workers%s) in %.2fs — "
              "%.0f QPS\n",
              util::FormatWithCommas(load.requests).c_str(),
              util::FormatWithCommas(load.clients).c_str(),
              util::FormatWithCommas(load.serve_threads).c_str(),
              load.overload ? ", overload" : "", pass.seconds, pass.qps);
  std::printf("outcomes: %s ok, %s degraded, %s shed, %s deadline\n",
              util::FormatWithCommas(pass.ok).c_str(),
              util::FormatWithCommas(pass.degraded).c_str(),
              util::FormatWithCommas(pass.shed).c_str(),
              util::FormatWithCommas(pass.deadline).c_str());
  std::printf("latency us: p50 %.1f  p99 %.1f  p999 %.1f\n",
              pass.latency.Quantile(0.5), pass.latency.Quantile(0.99),
              pass.latency.Quantile(0.999));
  std::printf("cache: %s hits / %s misses (hit rate %.3f), %s evictions, "
              "%zu sessions\n",
              util::FormatWithCommas(pass.cache.hits).c_str(),
              util::FormatWithCommas(pass.cache.misses).c_str(),
              pass.cache.HitRate(),
              util::FormatWithCommas(pass.cache.evictions).c_str(),
              pass.sessions);
  std::printf("resilience: %lld breaker trips, %lld swaps, %lld rollbacks, "
              "model epoch %lld\n",
              static_cast<long long>(pass.resilience.breaker_trips),
              static_cast<long long>(pass.resilience.model_swaps),
              static_cast<long long>(pass.resilience.model_rollbacks),
              static_cast<long long>(pass.model_epoch));
  if (load.trace_sample >= 0) {
    std::printf("tracing: %lld considered, %lld retained "
                "(%lld forced, %lld slow, %lld sampled), %lld dropped\n",
                static_cast<long long>(sampler_stats.considered),
                static_cast<long long>(sampler_stats.retained()),
                static_cast<long long>(sampler_stats.retained_forced),
                static_cast<long long>(sampler_stats.retained_slow),
                static_cast<long long>(sampler_stats.retained_sampled),
                static_cast<long long>(sampler_stats.dropped));
  }
  std::printf("%s", obs::RenderSloDashboard(pass.slos).c_str());

  const std::string ds = bundle.name;
  run.AddValue(ds, "requests", static_cast<double>(load.requests));
  run.AddValue(ds, "serve_threads", static_cast<double>(load.serve_threads));
  run.AddValue(ds, "clients", static_cast<double>(load.clients));
  run.AddValue(ds, "qps", pass.qps);
  run.AddValue(ds, "p50_us", pass.latency.Quantile(0.5));
  run.AddValue(ds, "p99_us", pass.latency.Quantile(0.99));
  run.AddValue(ds, "p999_us", pass.latency.Quantile(0.999));
  run.AddValue(ds, "cache_hit_rate", pass.cache.HitRate());
  run.AddValue(ds, "cache_hits", static_cast<double>(pass.cache.hits));
  run.AddValue(ds, "cache_misses", static_cast<double>(pass.cache.misses));
  run.AddValue(ds, "sessions", static_cast<double>(pass.sessions));
  run.AddValue(ds, "ok", static_cast<double>(pass.ok));
  run.AddValue(ds, "degraded", static_cast<double>(pass.degraded));
  run.AddValue(ds, "shed", static_cast<double>(pass.shed));
  run.AddValue(ds, "deadline", static_cast<double>(pass.deadline));
  run.AddValue(ds, "shed_rate", shed_rate);
  run.AddValue(ds, "degraded_rate", degraded_rate);
  run.AddValue(ds, "deadline_rate", deadline_rate);
  run.AddValue(ds, "model_swaps",
               static_cast<double>(pass.resilience.model_swaps));
  run.AddValue(ds, "model_rollbacks",
               static_cast<double>(pass.resilience.model_rollbacks));
  run.AddValue(ds, "overload", load.overload ? 1.0 : 0.0);
  run.AddValue(ds, "trace_sample", load.trace_sample);
  run.AddValue(ds, "traces_retained",
               static_cast<double>(sampler_stats.retained()));
  run.AddValue(ds, "traces_dropped",
               static_cast<double>(sampler_stats.dropped));
  for (const obs::SloSnapshot& slo : pass.slos) {
    run.AddValue(ds, "slo_" + slo.name + "_burn", slo.burn_long);
  }
  if (load.trace_overhead) {
    run.AddValue(ds, "trace_off_p99_us", trace_off_p99);
    run.AddValue(ds, "trace_on_p99_us", trace_on_p99);
    run.AddValue(ds, "trace_overhead_ratio",
                 trace_off_p99 > 0 ? trace_on_p99 / trace_off_p99 : 0.0);
  }
  return 0;
}
