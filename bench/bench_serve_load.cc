// Load generator for the serving layer (docs/serving.md): closed-loop client
// threads replay a synthetic repeat-heavy trace against RecommendService as
// mixed recommend/observe traffic and report QPS, tail latency, and the
// measured ScoreCache hit rate.
//
// The traffic model makes cache behaviour observable on purpose: each client
// draws users from a small hot pool (repeat queries against an unchanged
// window hit the (user, epoch) cache) and turns every --observe-every-th
// request into an Observe (which bumps the epoch and forces the next
// recommend for that user to re-score).
//
//   ./bench_serve_load [--requests=12000 --serve-threads=4 --clients=8
//                       --top-n=10 --observe-every=8 --hot-users=64
//                       --cache-capacity=4096 --queue-capacity=1024
//                       --json-out=r.json]
//
// JSON keys (reconsume.bench.v1): requests, serve_threads, clients, qps,
// p50_us, p99_us, p999_us, cache_hit_rate, cache_hits, cache_misses,
// sessions.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stopwatch.h"

using namespace reconsume;

namespace {

struct LoadFlags {
  int64_t requests = 12000;
  int64_t serve_threads = 4;
  int64_t clients = 8;
  int64_t top_n = 10;
  int64_t observe_every = 8;  ///< 1 observe per this many requests (0 = none)
  int64_t hot_users = 64;     ///< pool each client draws users from
  int64_t cache_capacity = 4096;
  int64_t queue_capacity = 1024;
};

LoadFlags ReadLoadFlags(const util::FlagSet& flags) {
  LoadFlags out;
  out.requests = flags.GetInt("requests", out.requests).ValueOrDie();
  out.serve_threads =
      flags.GetInt("serve-threads", out.serve_threads).ValueOrDie();
  out.clients = flags.GetInt("clients", out.clients).ValueOrDie();
  out.top_n = flags.GetInt("top-n", out.top_n).ValueOrDie();
  out.observe_every =
      flags.GetInt("observe-every", out.observe_every).ValueOrDie();
  out.hot_users = flags.GetInt("hot-users", out.hot_users).ValueOrDie();
  out.cache_capacity =
      flags.GetInt("cache-capacity", out.cache_capacity).ValueOrDie();
  out.queue_capacity =
      flags.GetInt("queue-capacity", out.queue_capacity).ValueOrDie();
  RECONSUME_CHECK(out.requests >= 1 && out.serve_threads >= 1 &&
                  out.clients >= 1 && out.top_n >= 1 && out.hot_users >= 1)
      << "all load-generator sizes must be >= 1";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run("serve_load", argc, argv);
  auto flags = util::FlagSet::Parse(argc, argv);
  RECONSUME_CHECK(flags.ok()) << flags.status();
  const LoadFlags load = ReadLoadFlags(flags.ValueOrDie());

  auto bundle = bench::MakeGowallaBundle();
  bench::PrintHeader("serve_load", bundle);
  auto method = bench::FitTsPpr(bundle, bench::MakeTsPprConfig(bundle));

  serve::ServeConfig config;
  config.num_threads = static_cast<int>(load.serve_threads);
  config.queue_capacity = static_cast<size_t>(load.queue_capacity);
  config.cache_capacity = static_cast<size_t>(load.cache_capacity);
  config.window_capacity = bundle.defaults.window_capacity;
  config.min_gap = bundle.defaults.min_gap;
  serve::RecommendService service(bundle.dataset.get(), method.recommender,
                                  config);

  // The hot pool: the first users with a non-trivial history, shared by all
  // clients so their queries overlap (that overlap is what the cache serves).
  const size_t num_users = bundle.dataset->num_users();
  std::vector<data::UserId> hot;
  for (size_t u = 0; u < num_users && hot.size() <
       static_cast<size_t>(load.hot_users); ++u) {
    if (bundle.dataset->sequence(static_cast<data::UserId>(u)).size() >= 8) {
      hot.push_back(static_cast<data::UserId>(u));
    }
  }
  RECONSUME_CHECK(!hot.empty()) << "no users with enough history";

  std::atomic<int64_t> issued{0};
  std::atomic<int64_t> failed{0};
  util::Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(load.clients));
  for (int64_t c = 0; c < load.clients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(0xBEEFu + static_cast<uint64_t>(c));
      while (true) {
        const int64_t seq = issued.fetch_add(1, std::memory_order_relaxed);
        if (seq >= load.requests) break;
        const data::UserId user = hot[rng.Uniform(hot.size())];
        const bool observe =
            load.observe_every > 0 && seq % load.observe_every == 0;
        serve::ServeResponse response;
        if (observe) {
          // Re-consume something the user already consumed: repeat traffic.
          const auto& seq_u = bundle.dataset->sequence(user);
          const data::ItemId item = seq_u[rng.Uniform(seq_u.size())];
          response = service.Observe(user, item).get();
        } else {
          response =
              service.Recommend(user, static_cast<int>(load.top_n)).get();
        }
        if (!response.status.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = wall.ElapsedSeconds();
  service.Shutdown();

  const serve::ScoreCacheStats cache = service.cache_stats();
  const obs::HistogramSnapshot latency = service.LatencySnapshot();
  const double qps = seconds > 0 ? static_cast<double>(load.requests) / seconds
                                 : 0.0;
  RECONSUME_CHECK(failed.load() == 0)
      << failed.load() << " requests failed";
  RECONSUME_CHECK(service.requests_served() >= load.requests)
      << "served " << service.requests_served() << " of " << load.requests;

  std::printf("replayed %s requests (%s clients -> %s workers) in %.2fs — "
              "%.0f QPS\n",
              util::FormatWithCommas(load.requests).c_str(),
              util::FormatWithCommas(load.clients).c_str(),
              util::FormatWithCommas(load.serve_threads).c_str(), seconds,
              qps);
  std::printf("latency us: p50 %.1f  p99 %.1f  p999 %.1f\n",
              latency.Quantile(0.5), latency.Quantile(0.99),
              latency.Quantile(0.999));
  std::printf("cache: %s hits / %s misses (hit rate %.3f), %s evictions, "
              "%zu sessions\n",
              util::FormatWithCommas(cache.hits).c_str(),
              util::FormatWithCommas(cache.misses).c_str(), cache.HitRate(),
              util::FormatWithCommas(cache.evictions).c_str(),
              service.num_sessions());

  const std::string ds = bundle.name;
  run.AddValue(ds, "requests", static_cast<double>(load.requests));
  run.AddValue(ds, "serve_threads", static_cast<double>(load.serve_threads));
  run.AddValue(ds, "clients", static_cast<double>(load.clients));
  run.AddValue(ds, "qps", qps);
  run.AddValue(ds, "p50_us", latency.Quantile(0.5));
  run.AddValue(ds, "p99_us", latency.Quantile(0.99));
  run.AddValue(ds, "p999_us", latency.Quantile(0.999));
  run.AddValue(ds, "cache_hit_rate", cache.HitRate());
  run.AddValue(ds, "cache_hits", static_cast<double>(cache.hits));
  run.AddValue(ds, "cache_misses", static_cast<double>(cache.misses));
  run.AddValue(ds, "sessions", static_cast<double>(service.num_sessions()));
  return 0;
}
