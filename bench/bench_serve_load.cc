// Load generator for the serving layer (docs/serving.md): client threads
// replay a synthetic repeat-heavy trace against RecommendService as mixed
// recommend/observe traffic and report QPS, tail latency, and the measured
// ScoreCache hit rate.
//
// Two modes:
//
//   * Closed loop (default): each client waits for its response before
//     issuing the next request. Producers feel queue backpressure; nothing
//     sheds. The traffic model makes cache behaviour observable on purpose:
//     each client draws users from a small hot pool and turns every
//     --observe-every-th request into an Observe (which bumps the epoch and
//     forces the next recommend for that user to re-score).
//
//   * --overload: open-window chaos mode (docs/serving.md §8.6). Clients
//     keep ~2x the queue capacity in flight with per-request deadlines, so
//     admission control and the degradation ladder actually engage; a
//     mid-load hot-swap (including one failpoint-forced rollback) runs
//     under full traffic. The bench asserts the resilience contract: every
//     future resolves (ok / degraded / shed / deadline — never a hang,
//     never an uncategorized error).
//
//   ./bench_serve_load [--requests=12000 --serve-threads=4 --clients=8
//                       --top-n=10 --observe-every=8 --hot-users=64
//                       --cache-capacity=4096 --queue-capacity=1024
//                       --overload --timeout-us=50000 --enqueue-timeout-us=2000
//                       --shed-watermark=0.9 --max-queue-delay-us=0
//                       --swap-mid-load --json-out=r.json]
//
// JSON keys (reconsume.bench.v1): requests, serve_threads, clients, qps,
// p50_us, p99_us, p999_us, cache_hit_rate, cache_hits, cache_misses,
// sessions, ok, degraded, shed, deadline, shed_rate, degraded_rate,
// deadline_rate, model_swaps, model_rollbacks, overload.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "serve/server.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stopwatch.h"

using namespace reconsume;

namespace {

struct LoadFlags {
  int64_t requests = 12000;
  int64_t serve_threads = 4;
  int64_t clients = 8;
  int64_t top_n = 10;
  int64_t observe_every = 8;  ///< 1 observe per this many requests (0 = none)
  int64_t hot_users = 64;     ///< pool each client draws users from
  int64_t cache_capacity = 4096;
  int64_t queue_capacity = 1024;
  bool overload = false;       ///< open-window 2x-saturation chaos mode
  int64_t timeout_us = 50000;  ///< per-request deadline in overload mode
  int64_t enqueue_timeout_us = 2000;
  double shed_watermark = 0.9;
  int64_t max_queue_delay_us = 0;
  bool swap_mid_load = true;  ///< hot-swap (plus a forced rollback) mid-run
};

LoadFlags ReadLoadFlags(const util::FlagSet& flags) {
  LoadFlags out;
  out.requests = flags.GetInt("requests", out.requests).ValueOrDie();
  out.serve_threads =
      flags.GetInt("serve-threads", out.serve_threads).ValueOrDie();
  out.clients = flags.GetInt("clients", out.clients).ValueOrDie();
  out.top_n = flags.GetInt("top-n", out.top_n).ValueOrDie();
  out.observe_every =
      flags.GetInt("observe-every", out.observe_every).ValueOrDie();
  out.hot_users = flags.GetInt("hot-users", out.hot_users).ValueOrDie();
  out.cache_capacity =
      flags.GetInt("cache-capacity", out.cache_capacity).ValueOrDie();
  out.queue_capacity =
      flags.GetInt("queue-capacity", out.queue_capacity).ValueOrDie();
  out.overload = flags.GetBool("overload", out.overload).ValueOrDie();
  out.timeout_us = flags.GetInt("timeout-us", out.timeout_us).ValueOrDie();
  out.enqueue_timeout_us =
      flags.GetInt("enqueue-timeout-us", out.enqueue_timeout_us).ValueOrDie();
  out.shed_watermark =
      flags.GetDouble("shed-watermark", out.shed_watermark).ValueOrDie();
  out.max_queue_delay_us =
      flags.GetInt("max-queue-delay-us", out.max_queue_delay_us).ValueOrDie();
  out.swap_mid_load =
      flags.GetBool("swap-mid-load", out.swap_mid_load).ValueOrDie();
  RECONSUME_CHECK(out.requests >= 1 && out.serve_threads >= 1 &&
                  out.clients >= 1 && out.top_n >= 1 && out.hot_users >= 1)
      << "all load-generator sizes must be >= 1";
  return out;
}

/// Per-bench outcome tally; every issued request lands in exactly one bucket.
struct Outcomes {
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> degraded{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> deadline{0};
  std::atomic<int64_t> error{0};
  std::atomic<int64_t> hung{0};  ///< future unresolved after the grace wait
};

void Categorize(std::future<serve::ServeResponse>& future, Outcomes* out) {
  // Resilience contract: every future resolves. The generous grace wait only
  // exists so a violation becomes a counted `hung` instead of a stuck bench.
  if (future.wait_for(std::chrono::seconds(30)) !=
      std::future_status::ready) {
    out->hung.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const serve::ServeResponse response = future.get();
  if (response.status.ok()) {
    if (response.degraded) {
      out->degraded.fetch_add(1, std::memory_order_relaxed);
    } else {
      out->ok.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (response.status.code() == StatusCode::kUnavailable) {
    out->shed.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
    out->deadline.fetch_add(1, std::memory_order_relaxed);
  } else {
    out->error.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run("serve_load", argc, argv);
  auto flags = util::FlagSet::Parse(argc, argv);
  RECONSUME_CHECK(flags.ok()) << flags.status();
  const LoadFlags load = ReadLoadFlags(flags.ValueOrDie());

  auto bundle = bench::MakeGowallaBundle();
  bench::PrintHeader("serve_load", bundle);
  auto method = bench::FitTsPpr(bundle, bench::MakeTsPprConfig(bundle));

  serve::ServeConfig config;
  config.num_threads = static_cast<int>(load.serve_threads);
  config.queue_capacity = static_cast<size_t>(load.queue_capacity);
  config.cache_capacity = static_cast<size_t>(load.cache_capacity);
  config.window_capacity = bundle.defaults.window_capacity;
  config.min_gap = bundle.defaults.min_gap;
  if (load.overload) {
    config.resilience.enqueue_timeout_us = load.enqueue_timeout_us;
    config.resilience.shed_watermark = load.shed_watermark;
    config.resilience.max_queue_delay_us = load.max_queue_delay_us;
  }
  serve::RecommendService service(
      bundle.dataset.get(),
      std::shared_ptr<eval::Recommender>(method.owner, method.recommender),
      config);

  // The hot pool: the first users with a non-trivial history, shared by all
  // clients so their queries overlap (that overlap is what the cache serves).
  const size_t num_users = bundle.dataset->num_users();
  std::vector<data::UserId> hot;
  for (size_t u = 0; u < num_users && hot.size() <
       static_cast<size_t>(load.hot_users); ++u) {
    if (bundle.dataset->sequence(static_cast<data::UserId>(u)).size() >= 8) {
      hot.push_back(static_cast<data::UserId>(u));
    }
  }
  RECONSUME_CHECK(!hot.empty()) << "no users with enough history";

  // Open-window sizing: together the clients keep ~2x the queue capacity in
  // flight, the "2x saturation" point the resilience gate is specified at.
  const size_t max_inflight = std::max<size_t>(
      1, 2 * static_cast<size_t>(load.queue_capacity) /
             static_cast<size_t>(load.clients));
  serve::RequestOptions options;
  if (load.overload) options.timeout_us = load.timeout_us;

  Outcomes outcomes;
  std::atomic<int64_t> issued{0};
  util::Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(load.clients));
  for (int64_t c = 0; c < load.clients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(0xBEEFu + static_cast<uint64_t>(c));
      std::deque<std::future<serve::ServeResponse>> inflight;
      while (true) {
        const int64_t seq = issued.fetch_add(1, std::memory_order_relaxed);
        if (seq >= load.requests) break;
        const data::UserId user = hot[rng.Uniform(hot.size())];
        const bool observe =
            load.observe_every > 0 && seq % load.observe_every == 0;
        std::future<serve::ServeResponse> future;
        if (observe) {
          // Re-consume something the user already consumed: repeat traffic.
          const auto& seq_u = bundle.dataset->sequence(user);
          const data::ItemId item = seq_u[rng.Uniform(seq_u.size())];
          future = service.Observe(user, item, options);
        } else {
          future =
              service.Recommend(user, static_cast<int>(load.top_n), options);
        }
        if (!load.overload) {
          // Closed loop: wait in place, keep exactly one in flight.
          Categorize(future, &outcomes);
          continue;
        }
        inflight.push_back(std::move(future));
        while (inflight.size() > max_inflight) {
          Categorize(inflight.front(), &outcomes);
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        Categorize(inflight.front(), &outcomes);
        inflight.pop_front();
      }
    });
  }

  // Mid-load hot-swap: once a third of the traffic is in, force one
  // validation rollback (old model keeps serving), then land a real swap
  // while the clients keep hammering the service.
  std::thread swapper;
  if (load.overload && load.swap_mid_load) {
    swapper = std::thread([&] {
      while (issued.load(std::memory_order_relaxed) < load.requests / 3) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      auto refit = bench::FitTsPpr(bundle, bench::MakeTsPprConfig(bundle));
      std::shared_ptr<eval::Recommender> candidate(refit.owner,
                                                   refit.recommender);
#if RECONSUME_FAILPOINTS_ENABLED
      {
        util::ScopedFailpoint fp("serve/swap_validate", "error-once");
        auto rolled_back = service.SwapModel(candidate, "tsppr-reject");
        RECONSUME_CHECK(!rolled_back.ok())
            << "forced validation failure did not roll back";
      }
#endif
      auto swapped = service.SwapModel(candidate, "tsppr-v2");
      RECONSUME_CHECK(swapped.ok()) << swapped.status();
      std::printf("mid-load swap landed at model epoch %lld\n",
                  static_cast<long long>(swapped.ValueOrDie()));
    });
  }

  for (std::thread& t : clients) t.join();
  if (swapper.joinable()) swapper.join();
  const double seconds = wall.ElapsedSeconds();
  service.Shutdown();

  const serve::ScoreCacheStats cache = service.cache_stats();
  const serve::ResilienceStats resilience = service.resilience_stats();
  const obs::HistogramSnapshot latency = service.LatencySnapshot();
  const double qps = seconds > 0 ? static_cast<double>(load.requests) / seconds
                                 : 0.0;

  // The contract both modes enforce: no hangs, no uncategorized errors.
  // Sheds and deadline misses are legal only under --overload.
  RECONSUME_CHECK(outcomes.hung.load() == 0)
      << outcomes.hung.load() << " requests never resolved";
  RECONSUME_CHECK(outcomes.error.load() == 0)
      << outcomes.error.load() << " requests failed outside the "
      << "shed/deadline/degraded contract";
  if (!load.overload) {
    RECONSUME_CHECK(outcomes.shed.load() == 0 &&
                    outcomes.deadline.load() == 0)
        << "closed-loop traffic must not shed or miss deadlines";
  }
  RECONSUME_CHECK(service.requests_served() >= load.requests)
      << "served " << service.requests_served() << " of " << load.requests;

  const double total = static_cast<double>(load.requests);
  const double shed_rate = static_cast<double>(outcomes.shed.load()) / total;
  const double degraded_rate =
      static_cast<double>(outcomes.degraded.load()) / total;
  const double deadline_rate =
      static_cast<double>(outcomes.deadline.load()) / total;

  std::printf("replayed %s requests (%s clients -> %s workers%s) in %.2fs — "
              "%.0f QPS\n",
              util::FormatWithCommas(load.requests).c_str(),
              util::FormatWithCommas(load.clients).c_str(),
              util::FormatWithCommas(load.serve_threads).c_str(),
              load.overload ? ", overload" : "", seconds, qps);
  std::printf("outcomes: %s ok, %s degraded, %s shed, %s deadline\n",
              util::FormatWithCommas(outcomes.ok.load()).c_str(),
              util::FormatWithCommas(outcomes.degraded.load()).c_str(),
              util::FormatWithCommas(outcomes.shed.load()).c_str(),
              util::FormatWithCommas(outcomes.deadline.load()).c_str());
  std::printf("latency us: p50 %.1f  p99 %.1f  p999 %.1f\n",
              latency.Quantile(0.5), latency.Quantile(0.99),
              latency.Quantile(0.999));
  std::printf("cache: %s hits / %s misses (hit rate %.3f), %s evictions, "
              "%zu sessions\n",
              util::FormatWithCommas(cache.hits).c_str(),
              util::FormatWithCommas(cache.misses).c_str(), cache.HitRate(),
              util::FormatWithCommas(cache.evictions).c_str(),
              service.num_sessions());
  std::printf("resilience: %lld breaker trips, %lld swaps, %lld rollbacks, "
              "model epoch %lld\n",
              static_cast<long long>(resilience.breaker_trips),
              static_cast<long long>(resilience.model_swaps),
              static_cast<long long>(resilience.model_rollbacks),
              static_cast<long long>(service.model_epoch()));

  const std::string ds = bundle.name;
  run.AddValue(ds, "requests", static_cast<double>(load.requests));
  run.AddValue(ds, "serve_threads", static_cast<double>(load.serve_threads));
  run.AddValue(ds, "clients", static_cast<double>(load.clients));
  run.AddValue(ds, "qps", qps);
  run.AddValue(ds, "p50_us", latency.Quantile(0.5));
  run.AddValue(ds, "p99_us", latency.Quantile(0.99));
  run.AddValue(ds, "p999_us", latency.Quantile(0.999));
  run.AddValue(ds, "cache_hit_rate", cache.HitRate());
  run.AddValue(ds, "cache_hits", static_cast<double>(cache.hits));
  run.AddValue(ds, "cache_misses", static_cast<double>(cache.misses));
  run.AddValue(ds, "sessions", static_cast<double>(service.num_sessions()));
  run.AddValue(ds, "ok", static_cast<double>(outcomes.ok.load()));
  run.AddValue(ds, "degraded", static_cast<double>(outcomes.degraded.load()));
  run.AddValue(ds, "shed", static_cast<double>(outcomes.shed.load()));
  run.AddValue(ds, "deadline", static_cast<double>(outcomes.deadline.load()));
  run.AddValue(ds, "shed_rate", shed_rate);
  run.AddValue(ds, "degraded_rate", degraded_rate);
  run.AddValue(ds, "deadline_rate", deadline_rate);
  run.AddValue(ds, "model_swaps", static_cast<double>(resilience.model_swaps));
  run.AddValue(ds, "model_rollbacks",
               static_cast<double>(resilience.model_rollbacks));
  run.AddValue(ds, "overload", load.overload ? 1.0 : 0.0);
  return 0;
}
