#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/json_writer.h"
#include "util/fileio.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace reconsume {
namespace bench {

double GetScale() {
  const char* env = std::getenv("RECONSUME_SCALE");
  if (env == nullptr) return 0.5;
  const auto parsed = util::ParseDouble(env);
  if (!parsed.ok() || parsed.ValueOrDie() <= 0) {
    RECONSUME_LOG(Warning) << "ignoring bad RECONSUME_SCALE='" << env << "'";
    return 0.5;
  }
  return parsed.ValueOrDie();
}

int GetTrainThreads() {
  const char* env = std::getenv("RECONSUME_TRAIN_THREADS");
  if (env == nullptr) return 1;
  const auto parsed = util::ParseInt64(env);
  if (!parsed.ok() || parsed.ValueOrDie() < 1) {
    RECONSUME_LOG(Warning) << "ignoring bad RECONSUME_TRAIN_THREADS='" << env
                           << "'";
    return 1;
  }
  return static_cast<int>(parsed.ValueOrDie());
}

DatasetBundle MakeBundle(const data::SyntheticProfile& profile,
                         const eval::ExperimentDefaults& defaults) {
  DatasetBundle bundle;
  bundle.name = profile.name;
  bundle.defaults = defaults;

  data::SyntheticTraceGenerator generator(profile);
  auto generated = generator.Generate();
  RECONSUME_CHECK(generated.ok()) << generated.status();
  bundle.dataset = std::make_unique<data::Dataset>(
      std::move(generated).ValueOrDie().FilterByMinTrainLength(
          defaults.train_fraction, defaults.min_train_events));
  RECONSUME_CHECK(bundle.dataset->num_users() > 0)
      << "profile " << profile.name << " produced no users after filtering";

  auto split = data::TrainTestSplit::Temporal(bundle.dataset.get(),
                                              defaults.train_fraction);
  RECONSUME_CHECK(split.ok()) << split.status();
  bundle.split =
      std::make_unique<data::TrainTestSplit>(std::move(split).ValueOrDie());

  auto table = features::StaticFeatureTable::Compute(*bundle.split,
                                                     defaults.window_capacity);
  RECONSUME_CHECK(table.ok()) << table.status();
  bundle.table = std::make_unique<features::StaticFeatureTable>(
      std::move(table).ValueOrDie());
  return bundle;
}

DatasetBundle MakeGowallaBundle() {
  return MakeBundle(data::GowallaLikeProfile(GetScale()),
                    eval::ExperimentDefaults::Gowalla());
}

DatasetBundle MakeLastfmBundle() {
  return MakeBundle(data::LastfmLikeProfile(GetScale()),
                    eval::ExperimentDefaults::Lastfm());
}

std::vector<DatasetBundle> MakeBothBundles() {
  std::vector<DatasetBundle> bundles;
  bundles.push_back(MakeGowallaBundle());
  bundles.push_back(MakeLastfmBundle());
  return bundles;
}

core::TsPprPipelineConfig MakeTsPprConfig(const DatasetBundle& bundle) {
  core::TsPprPipelineConfig config;
  config.model.latent_dim = bundle.defaults.latent_dim;
  config.model.gamma = bundle.defaults.gamma;
  config.model.lambda = bundle.defaults.lambda;
  config.sampling.window_capacity = bundle.defaults.window_capacity;
  config.sampling.min_gap = bundle.defaults.min_gap;
  config.sampling.negatives_per_positive = bundle.defaults.negatives;
  config.train.num_threads = GetTrainThreads();
  return config;
}

Method FitTsPpr(const DatasetBundle& bundle,
                const core::TsPprPipelineConfig& config, std::string name) {
  auto fitted = core::TsPpr::Fit(*bundle.split, config);
  RECONSUME_CHECK(fitted.ok()) << fitted.status();
  auto owner = std::make_shared<core::TsPpr>(std::move(fitted).ValueOrDie());
  Method method;
  method.name = std::move(name);
  method.recommender = owner->recommender();
  method.owner = owner;
  return method;
}

std::vector<Method> FitAllMethods(const DatasetBundle& bundle,
                                  bool include_ppr_static) {
  std::vector<Method> methods;

  {
    auto owner = std::make_shared<baselines::RandomRecommender>();
    methods.push_back({"Random", owner.get(), owner});
  }
  {
    auto owner =
        std::make_shared<baselines::PopRecommender>(bundle.table.get());
    methods.push_back({"Pop", owner.get(), owner});
  }
  {
    auto owner = std::make_shared<baselines::RecencyRecommender>();
    methods.push_back({"Recency", owner.get(), owner});
  }
  {
    baselines::FpmcConfig config;
    config.window_capacity = bundle.defaults.window_capacity;
    config.min_gap = bundle.defaults.min_gap;
    auto fitted = baselines::FpmcRecommender::Fit(*bundle.split, config);
    RECONSUME_CHECK(fitted.ok()) << fitted.status();
    auto owner = std::make_shared<baselines::FpmcRecommender>(
        std::move(fitted).ValueOrDie());
    methods.push_back({"FPMC", owner.get(), owner});
  }
  {
    baselines::SurvivalOptions options;
    options.window_capacity = bundle.defaults.window_capacity;
    auto fitted = baselines::SurvivalRecommender::Fit(
        *bundle.split, bundle.table.get(), options);
    RECONSUME_CHECK(fitted.ok()) << fitted.status();
    auto owner = std::make_shared<baselines::SurvivalRecommender>(
        std::move(fitted).ValueOrDie());
    methods.push_back({"Survival", owner.get(), owner});
  }
  {
    baselines::DyrcOptions options;
    options.window_capacity = bundle.defaults.window_capacity;
    options.min_gap = bundle.defaults.min_gap;
    auto fitted =
        baselines::DyrcRecommender::Fit(*bundle.split, bundle.table.get(),
                                        options);
    RECONSUME_CHECK(fitted.ok()) << fitted.status();
    auto owner = std::make_shared<baselines::DyrcRecommender>(
        std::move(fitted).ValueOrDie());
    methods.push_back({"DYRC", owner.get(), owner});
  }
  if (include_ppr_static) {
    // Plain BPR trained on the same quadruples (the paper's §4.1 argument
    // that a static pairwise ranker cannot express temporal preference).
    auto config = MakeTsPprConfig(bundle);
    auto table_extractor = std::make_shared<features::FeatureExtractor>(
        bundle.table.get(), features::FeatureConfig::AllFeatures());
    auto training_set = sampling::TrainingSet::Build(
        *bundle.split, *table_extractor, config.sampling);
    RECONSUME_CHECK(training_set.ok()) << training_set.status();
    core::PprConfig ppr_config;
    ppr_config.latent_dim = config.model.latent_dim;
    ppr_config.gamma = config.model.gamma;
    auto fitted = core::PprModel::Fit(training_set.ValueOrDie(),
                                      bundle.dataset->num_users(),
                                      bundle.dataset->num_items(), ppr_config);
    RECONSUME_CHECK(fitted.ok()) << fitted.status();
    auto owner =
        std::make_shared<core::PprModel>(std::move(fitted).ValueOrDie());
    methods.push_back({"PPR(static)", owner.get(), owner});
  }
  methods.push_back(FitTsPpr(bundle, MakeTsPprConfig(bundle)));
  return methods;
}

eval::AccuracyResult EvaluateMethod(const DatasetBundle& bundle,
                                    Method* method, int min_gap_override,
                                    bool measure_latency) {
  eval::EvalOptions options;
  options.window_capacity = bundle.defaults.window_capacity;
  options.min_gap =
      min_gap_override >= 0 ? min_gap_override : bundle.defaults.min_gap;
  options.measure_latency = measure_latency;
  eval::Evaluator evaluator(bundle.split.get(), options);
  auto result = evaluator.Evaluate(method->recommender);
  RECONSUME_CHECK(result.ok()) << result.status();
  auto out = std::move(result).ValueOrDie();
  out.method = method->name;  // sweeps rename methods per configuration
  return out;
}

BenchRun::BenchRun(std::string experiment, int argc, const char* const* argv)
    : experiment_(std::move(experiment)) {
  auto flags = util::FlagSet::Parse(argc, argv);
  RECONSUME_CHECK(flags.ok()) << flags.status();
  auto json_path = flags.ValueOrDie().GetString("json-out", "");
  RECONSUME_CHECK(json_path.ok()) << json_path.status();
  json_path_ = std::move(json_path).ValueOrDie();
  auto config = obs::TelemetryConfigFromFlags(flags.ValueOrDie());
  RECONSUME_CHECK(config.ok()) << config.status();
  auto session = obs::TelemetrySession::Start(config.ValueOrDie());
  RECONSUME_CHECK(session.ok()) << session.status();
  session_ = std::move(session).ValueOrDie();
}

BenchRun::~BenchRun() {
  const Status finished = Finish();
  if (!finished.ok()) {
    RECONSUME_LOG(Error) << "bench finish failed: " << finished.ToString();
  }
}

void BenchRun::AddValue(const std::string& dataset, const std::string& key,
                        double value) {
  DatasetResults* slot = nullptr;
  for (DatasetResults& existing : results_) {
    if (existing.dataset == dataset) {
      slot = &existing;
      break;
    }
  }
  if (slot == nullptr) {
    results_.push_back(DatasetResults{dataset, {}});
    slot = &results_.back();
  }
  for (auto& [existing_key, existing_value] : slot->values) {
    if (existing_key == key) {
      existing_value = value;
      return;
    }
  }
  slot->values.emplace_back(key, value);
}

std::string BenchRun::ToJson() const {
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("schema")
      .Value("reconsume.bench.v1")
      .Key("experiment")
      .Value(experiment_)
      .Key("results")
      .BeginArray();
  for (const DatasetResults& result : results_) {
    writer.BeginObject()
        .Key("dataset")
        .Value(result.dataset)
        .Key("values")
        .BeginObject();
    for (const auto& [key, value] : result.values) {
      writer.Key(key).Value(value);
    }
    writer.EndObject().EndObject();
  }
  writer.EndArray().EndObject();
  return std::move(writer).Take();
}

Status BenchRun::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  Status first = Status::OK();
  if (!json_path_.empty()) {
    first = util::AtomicWriteFile(json_path_, ToJson());
  }
  const Status telemetry = session_.Finish();
  return first.ok() ? telemetry : first;
}

void PrintHeader(const std::string& experiment, const DatasetBundle& bundle) {
  const auto stats = data::ComputeDatasetStats(
      *bundle.dataset, bundle.defaults.window_capacity);
  std::printf("=== %s | %s ===\n", experiment.c_str(), bundle.name.c_str());
  std::printf("%s\n",
              data::FormatDatasetStats(bundle.name, stats).c_str());
  std::printf("defaults (Table 4): lambda=%g gamma=%g K=%d S=%d Omega=%d "
              "|W|=%d scale=%g\n\n",
              bundle.defaults.lambda, bundle.defaults.gamma,
              bundle.defaults.latent_dim, bundle.defaults.negatives,
              bundle.defaults.min_gap, bundle.defaults.window_capacity,
              GetScale());
}

}  // namespace bench
}  // namespace reconsume
