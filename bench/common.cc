#include "bench/common.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace reconsume {
namespace bench {

double GetScale() {
  const char* env = std::getenv("RECONSUME_SCALE");
  if (env == nullptr) return 0.5;
  const auto parsed = util::ParseDouble(env);
  if (!parsed.ok() || parsed.ValueOrDie() <= 0) {
    RECONSUME_LOG(Warning) << "ignoring bad RECONSUME_SCALE='" << env << "'";
    return 0.5;
  }
  return parsed.ValueOrDie();
}

int GetTrainThreads() {
  const char* env = std::getenv("RECONSUME_TRAIN_THREADS");
  if (env == nullptr) return 1;
  const auto parsed = util::ParseInt64(env);
  if (!parsed.ok() || parsed.ValueOrDie() < 1) {
    RECONSUME_LOG(Warning) << "ignoring bad RECONSUME_TRAIN_THREADS='" << env
                           << "'";
    return 1;
  }
  return static_cast<int>(parsed.ValueOrDie());
}

DatasetBundle MakeBundle(const data::SyntheticProfile& profile,
                         const eval::ExperimentDefaults& defaults) {
  DatasetBundle bundle;
  bundle.name = profile.name;
  bundle.defaults = defaults;

  data::SyntheticTraceGenerator generator(profile);
  auto generated = generator.Generate();
  RECONSUME_CHECK(generated.ok()) << generated.status();
  bundle.dataset = std::make_unique<data::Dataset>(
      std::move(generated).ValueOrDie().FilterByMinTrainLength(
          defaults.train_fraction, defaults.min_train_events));
  RECONSUME_CHECK(bundle.dataset->num_users() > 0)
      << "profile " << profile.name << " produced no users after filtering";

  auto split = data::TrainTestSplit::Temporal(bundle.dataset.get(),
                                              defaults.train_fraction);
  RECONSUME_CHECK(split.ok()) << split.status();
  bundle.split =
      std::make_unique<data::TrainTestSplit>(std::move(split).ValueOrDie());

  auto table = features::StaticFeatureTable::Compute(*bundle.split,
                                                     defaults.window_capacity);
  RECONSUME_CHECK(table.ok()) << table.status();
  bundle.table = std::make_unique<features::StaticFeatureTable>(
      std::move(table).ValueOrDie());
  return bundle;
}

DatasetBundle MakeGowallaBundle() {
  return MakeBundle(data::GowallaLikeProfile(GetScale()),
                    eval::ExperimentDefaults::Gowalla());
}

DatasetBundle MakeLastfmBundle() {
  return MakeBundle(data::LastfmLikeProfile(GetScale()),
                    eval::ExperimentDefaults::Lastfm());
}

std::vector<DatasetBundle> MakeBothBundles() {
  std::vector<DatasetBundle> bundles;
  bundles.push_back(MakeGowallaBundle());
  bundles.push_back(MakeLastfmBundle());
  return bundles;
}

core::TsPprPipelineConfig MakeTsPprConfig(const DatasetBundle& bundle) {
  core::TsPprPipelineConfig config;
  config.model.latent_dim = bundle.defaults.latent_dim;
  config.model.gamma = bundle.defaults.gamma;
  config.model.lambda = bundle.defaults.lambda;
  config.sampling.window_capacity = bundle.defaults.window_capacity;
  config.sampling.min_gap = bundle.defaults.min_gap;
  config.sampling.negatives_per_positive = bundle.defaults.negatives;
  config.train.num_threads = GetTrainThreads();
  return config;
}

Method FitTsPpr(const DatasetBundle& bundle,
                const core::TsPprPipelineConfig& config, std::string name) {
  auto fitted = core::TsPpr::Fit(*bundle.split, config);
  RECONSUME_CHECK(fitted.ok()) << fitted.status();
  auto owner = std::make_shared<core::TsPpr>(std::move(fitted).ValueOrDie());
  Method method;
  method.name = std::move(name);
  method.recommender = owner->recommender();
  method.owner = owner;
  return method;
}

std::vector<Method> FitAllMethods(const DatasetBundle& bundle,
                                  bool include_ppr_static) {
  std::vector<Method> methods;

  {
    auto owner = std::make_shared<baselines::RandomRecommender>();
    methods.push_back({"Random", owner.get(), owner});
  }
  {
    auto owner =
        std::make_shared<baselines::PopRecommender>(bundle.table.get());
    methods.push_back({"Pop", owner.get(), owner});
  }
  {
    auto owner = std::make_shared<baselines::RecencyRecommender>();
    methods.push_back({"Recency", owner.get(), owner});
  }
  {
    baselines::FpmcConfig config;
    config.window_capacity = bundle.defaults.window_capacity;
    config.min_gap = bundle.defaults.min_gap;
    auto fitted = baselines::FpmcRecommender::Fit(*bundle.split, config);
    RECONSUME_CHECK(fitted.ok()) << fitted.status();
    auto owner = std::make_shared<baselines::FpmcRecommender>(
        std::move(fitted).ValueOrDie());
    methods.push_back({"FPMC", owner.get(), owner});
  }
  {
    baselines::SurvivalOptions options;
    options.window_capacity = bundle.defaults.window_capacity;
    auto fitted = baselines::SurvivalRecommender::Fit(
        *bundle.split, bundle.table.get(), options);
    RECONSUME_CHECK(fitted.ok()) << fitted.status();
    auto owner = std::make_shared<baselines::SurvivalRecommender>(
        std::move(fitted).ValueOrDie());
    methods.push_back({"Survival", owner.get(), owner});
  }
  {
    baselines::DyrcOptions options;
    options.window_capacity = bundle.defaults.window_capacity;
    options.min_gap = bundle.defaults.min_gap;
    auto fitted =
        baselines::DyrcRecommender::Fit(*bundle.split, bundle.table.get(),
                                        options);
    RECONSUME_CHECK(fitted.ok()) << fitted.status();
    auto owner = std::make_shared<baselines::DyrcRecommender>(
        std::move(fitted).ValueOrDie());
    methods.push_back({"DYRC", owner.get(), owner});
  }
  if (include_ppr_static) {
    // Plain BPR trained on the same quadruples (the paper's §4.1 argument
    // that a static pairwise ranker cannot express temporal preference).
    auto config = MakeTsPprConfig(bundle);
    auto table_extractor = std::make_shared<features::FeatureExtractor>(
        bundle.table.get(), features::FeatureConfig::AllFeatures());
    auto training_set = sampling::TrainingSet::Build(
        *bundle.split, *table_extractor, config.sampling);
    RECONSUME_CHECK(training_set.ok()) << training_set.status();
    core::PprConfig ppr_config;
    ppr_config.latent_dim = config.model.latent_dim;
    ppr_config.gamma = config.model.gamma;
    auto fitted = core::PprModel::Fit(training_set.ValueOrDie(),
                                      bundle.dataset->num_users(),
                                      bundle.dataset->num_items(), ppr_config);
    RECONSUME_CHECK(fitted.ok()) << fitted.status();
    auto owner =
        std::make_shared<core::PprModel>(std::move(fitted).ValueOrDie());
    methods.push_back({"PPR(static)", owner.get(), owner});
  }
  methods.push_back(FitTsPpr(bundle, MakeTsPprConfig(bundle)));
  return methods;
}

eval::AccuracyResult EvaluateMethod(const DatasetBundle& bundle,
                                    Method* method, int min_gap_override,
                                    bool measure_latency) {
  eval::EvalOptions options;
  options.window_capacity = bundle.defaults.window_capacity;
  options.min_gap =
      min_gap_override >= 0 ? min_gap_override : bundle.defaults.min_gap;
  options.measure_latency = measure_latency;
  eval::Evaluator evaluator(bundle.split.get(), options);
  auto result = evaluator.Evaluate(method->recommender);
  RECONSUME_CHECK(result.ok()) << result.status();
  auto out = std::move(result).ValueOrDie();
  out.method = method->name;  // sweeps rename methods per configuration
  return out;
}

void PrintHeader(const std::string& experiment, const DatasetBundle& bundle) {
  const auto stats = data::ComputeDatasetStats(
      *bundle.dataset, bundle.defaults.window_capacity);
  std::printf("=== %s | %s ===\n", experiment.c_str(), bundle.name.c_str());
  std::printf("%s\n",
              data::FormatDatasetStats(bundle.name, stats).c_str());
  std::printf("defaults (Table 4): lambda=%g gamma=%g K=%d S=%d Omega=%d "
              "|W|=%d scale=%g\n\n",
              bundle.defaults.lambda, bundle.defaults.gamma,
              bundle.defaults.latent_dim, bundle.defaults.negatives,
              bundle.defaults.min_gap, bundle.defaults.window_capacity,
              GetScale());
}

}  // namespace bench
}  // namespace reconsume
