// Extension: trace characterization — shows the synthetic profiles exhibit
// the structural properties the repeat-consumption literature reports for
// the real traces: a decaying recency curve (Anderson et al. [7]), skewed
// item popularity, repeats concentrated on popular items, and head-heavy
// inter-consumption gaps.

#include <cstdio>

#include "bench/common.h"
#include "data/analysis.h"

using namespace reconsume;

int main() {
  for (auto&& bundle : bench::MakeBothBundles()) {
    bench::PrintHeader("EXT: dataset analysis", bundle);
    const data::Dataset& dataset = *bundle.dataset;

    std::printf("popularity Gini: %.3f\n\n", data::PopularityGini(dataset));

    const auto curve = data::ComputeRecencyCurve(dataset, 50);
    eval::TextTable recency({"gap", "P(reconsume | gap)", "opportunities"});
    for (int g : {1, 2, 3, 5, 10, 20, 50}) {
      recency.AddRow(
          {std::to_string(g),
           eval::TextTable::Cell(
               curve.reconsumption_probability[static_cast<size_t>(g - 1)], 5),
           util::FormatWithCommas(
               curve.opportunity_counts[static_cast<size_t>(g - 1)])});
    }
    std::printf("recency curve (Anderson et al. style):\n%s\n",
                recency.ToString().c_str());

    const auto shares = data::RepeatShareByPopularityDecile(
        dataset, bundle.defaults.window_capacity);
    eval::TextTable deciles({"popularity decile", "share of repeats"});
    for (int d = 0; d < 10; ++d) {
      deciles.AddRow({d == 0 ? "1 (most popular)" : std::to_string(d + 1),
                      eval::TextTable::Cell(shares[static_cast<size_t>(d)], 4)});
    }
    std::printf("repeat share by item-popularity decile:\n%s\n",
                deciles.ToString().c_str());

    const auto gaps = data::InterConsumptionGapDistribution(dataset, 100);
    double head = 0.0;
    for (int g = 0; g < 10; ++g) head += gaps[static_cast<size_t>(g)];
    std::printf("inter-consumption gaps: %.1f%% within 10 steps, %.1f%% at "
                "the >=100-step tail\n\n",
                100.0 * head, 100.0 * gaps.back());
  }
  return 0;
}
