// Microbenchmarks of the hot paths under Algorithm 1 and the evaluation
// protocol: BLAS-1 kernels (scalar reference vs the runtime-dispatched SIMD
// tier), the batched scoring engine, the rank-1 mapping update, one full SGD
// step, window maintenance, and behavioral feature extraction.
//
// Custom main: a Stopwatch-based pre-pass records per-op timings through
// bench::BenchRun (reconsume.bench.v1 JSON via --json-out) before the
// google-benchmark registrations run — the JSON feeds
// tools/check_bench_regression.py in the perf-smoke CI leg.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/ts_ppr.h"
#include "core/ts_ppr_recommender.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "features/feature_extractor.h"
#include "math/kernels.h"
#include "math/matrix.h"
#include "math/simd.h"
#include "math/vector_ops.h"
#include "sampling/training_set.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "window/window_walker.h"

using namespace reconsume;

namespace {

constexpr size_t kDims[] = {4, 40, 80, 128};

void BM_Dot(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<double> x(k, 0.5), y(k, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Dot(x, y));
  }
}
BENCHMARK(BM_Dot)->Arg(4)->Arg(40)->Arg(80)->Arg(128);

void BM_KernelDot(benchmark::State& state, const math::KernelOps& kernels) {
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<double> x(k, 0.5), y(k, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::KernelDot(kernels, x, y));
  }
}
BENCHMARK_CAPTURE(BM_KernelDot, scalar, math::ScalarKernels())
    ->Arg(4)
    ->Arg(40)
    ->Arg(80)
    ->Arg(128);

void BM_Axpy(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<double> x(k, 0.5), y(k, 0.25);
  for (auto _ : state) {
    math::Axpy(0.01, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Axpy)->Arg(4)->Arg(40)->Arg(80)->Arg(128);

void BM_KernelAxpy(benchmark::State& state, const math::KernelOps& kernels) {
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<double> x(k, 0.5), y(k, 0.25);
  for (auto _ : state) {
    math::KernelAxpy(kernels, 0.01, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK_CAPTURE(BM_KernelAxpy, scalar, math::ScalarKernels())
    ->Arg(4)
    ->Arg(40)
    ->Arg(80)
    ->Arg(128);

/// rows x K row-major matrix dotted against one K-vector (the batched
/// candidate-scoring primitive). range(0) = K, rows fixed at 64.
void BM_DotBatch(benchmark::State& state, const math::KernelOps& kernels) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t rows = 64;
  std::vector<double> q(k, 0.5), matrix(rows * k, 0.25), out(rows, 0.0);
  for (auto _ : state) {
    kernels.dot_batch(q.data(), matrix.data(), rows, k, k, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK_CAPTURE(BM_DotBatch, scalar, math::ScalarKernels())
    ->Arg(4)
    ->Arg(40)
    ->Arg(80)
    ->Arg(128);

void BM_OuterProductUpdate(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  math::Matrix a(k, 4);
  std::vector<double> u(k, 0.5), f(4, 0.25);
  for (auto _ : state) {
    a.AddOuterProduct(0.01, u, f);
    benchmark::DoNotOptimize(a.Data().data());
  }
}
BENCHMARK(BM_OuterProductUpdate)->Arg(4)->Arg(40)->Arg(80)->Arg(128);

void BM_Sigmoid(benchmark::State& state) {
  double x = -8.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Sigmoid(x));
    x += 0.001;
    if (x > 8.0) x = -8.0;
  }
}
BENCHMARK(BM_Sigmoid);

void BM_WindowAdvance(benchmark::State& state) {
  data::SyntheticTraceGenerator generator(data::GowallaLikeProfile(0.1));
  const data::Dataset dataset = generator.Generate().ValueOrDie();
  const auto& seq = dataset.sequence(0);
  for (auto _ : state) {
    window::WindowWalker walker(&seq, 100);
    while (!walker.Done()) walker.Advance();
    benchmark::DoNotOptimize(walker.step());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(seq.size()));
}
BENCHMARK(BM_WindowAdvance);

struct PipelineFixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;
  std::unique_ptr<features::FeatureExtractor> extractor;
  std::unique_ptr<sampling::TrainingSet> training_set;
  std::unique_ptr<core::TsPprModel> model;

  static PipelineFixture& Get() {
    static PipelineFixture* fixture = [] {
      auto* f = new PipelineFixture();
      data::SyntheticTraceGenerator generator(data::GowallaLikeProfile(0.1));
      f->dataset = generator.Generate()
                       .ValueOrDie()
                       .FilterByMinTrainLength(0.7, 100);
      f->split = std::make_unique<data::TrainTestSplit>(
          data::TrainTestSplit::Temporal(&f->dataset, 0.7).ValueOrDie());
      f->table = std::make_unique<features::StaticFeatureTable>(
          features::StaticFeatureTable::Compute(*f->split, 100).ValueOrDie());
      f->extractor = std::make_unique<features::FeatureExtractor>(
          f->table.get(), features::FeatureConfig::AllFeatures());
      f->training_set = std::make_unique<sampling::TrainingSet>(
          sampling::TrainingSet::Build(*f->split, *f->extractor, {})
              .ValueOrDie());
      core::TsPprConfig config;
      config.latent_dim = 40;
      f->model = std::make_unique<core::TsPprModel>(
          core::TsPprModel::Create(f->dataset.num_users(),
                                   f->dataset.num_items(), 4, config)
              .ValueOrDie());
      return f;
    }();
    return *fixture;
  }

  /// A warmed walker over sequence 0 plus its eligible candidate set.
  window::WindowWalker MakeWalker(std::vector<data::ItemId>* candidates) {
    window::WindowWalker walker(&dataset.sequence(0), 100);
    while (walker.step() < 120) walker.Advance();
    walker.EligibleCandidates(10, candidates);
    return walker;
  }
};

void BM_FeatureExtraction(benchmark::State& state) {
  auto& fixture = PipelineFixture::Get();
  std::vector<data::ItemId> candidates;
  window::WindowWalker walker = fixture.MakeWalker(&candidates);
  std::vector<double> f(4);
  size_t i = 0;
  for (auto _ : state) {
    fixture.extractor->Extract(walker, candidates[i % candidates.size()], f);
    benchmark::DoNotOptimize(f.data());
    ++i;
  }
}
BENCHMARK(BM_FeatureExtraction);

/// End-to-end candidate-span scoring: the naive per-candidate model apply vs
/// the batched engine (w_u precompute + blocked SoA + SIMD kernels).
void BM_ScoreCandidates(benchmark::State& state, core::ScoringMode mode) {
  auto& fixture = PipelineFixture::Get();
  std::vector<data::ItemId> candidates;
  window::WindowWalker walker = fixture.MakeWalker(&candidates);
  core::TsPprRecommender recommender(fixture.model.get(),
                                     fixture.extractor.get(), "TS-PPR", mode);
  std::vector<double> scores(candidates.size(), 0.0);
  for (auto _ : state) {
    recommender.Score(0, walker, candidates, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(candidates.size()));
}
BENCHMARK_CAPTURE(BM_ScoreCandidates, naive, core::ScoringMode::kNaive);
BENCHMARK_CAPTURE(BM_ScoreCandidates, scalar, core::ScoringMode::kScalar);
BENCHMARK_CAPTURE(BM_ScoreCandidates, simd, core::ScoringMode::kSimd);

void BM_SgdStepTsPpr(benchmark::State& state) {
  auto& fixture = PipelineFixture::Get();
  core::TsPprConfig config;
  config.latent_dim = static_cast<int>(state.range(0));
  auto model = core::TsPprModel::Create(fixture.dataset.num_users(),
                                        fixture.dataset.num_items(), 4, config)
                   .ValueOrDie();
  core::TrainOptions options;
  options.max_steps = 1;  // one SGD step per Train call
  options.min_checks = 1000;
  core::TsPprTrainer trainer(options);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trainer.Train(*fixture.training_set, &model, &rng).ok());
  }
}
BENCHMARK(BM_SgdStepTsPpr)->Arg(10)->Arg(40)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// BenchRun pre-pass: Stopwatch min-of-trials per-op timings -> JSON.

/// Best per-op nanoseconds for `fn` (called `iters` times per trial) over
/// several temporally spread trials; the min suppresses scheduler noise the
/// same way the fig13 prepass does.
template <typename Fn>
double BestNsPerOp(Fn&& fn, int iters, int trials = 5) {
  util::Stopwatch stopwatch;
  double best = std::numeric_limits<double>::infinity();
  for (int t = 0; t < trials; ++t) {
    stopwatch.Restart();
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, stopwatch.ElapsedMicros() * 1e3 /
                              static_cast<double>(iters));
  }
  return best;
}

void RecordKernelTimings(bench::BenchRun* run, const std::string& tier,
                         const math::KernelOps& kernels) {
  constexpr const char* kDataset = "micro";
  for (size_t k : kDims) {
    std::vector<double> x(k, 0.5), y(k, 0.25);
    const std::string suffix =
        ".k" + std::to_string(k) + "." + tier + "_ns";
    run->AddValue(kDataset, "dot" + suffix, BestNsPerOp(
                                                [&] {
                                                  benchmark::DoNotOptimize(
                                                      kernels.dot(x.data(),
                                                                  y.data(), k));
                                                },
                                                20000));
    run->AddValue(kDataset, "axpy" + suffix, BestNsPerOp(
                                                 [&] {
                                                   kernels.axpy(1e-9, x.data(),
                                                                y.data(), k);
                                                   benchmark::DoNotOptimize(
                                                       y.data());
                                                 },
                                                 20000));
    const size_t rows = 64;
    std::vector<double> matrix(rows * k, 0.25), out(rows, 0.0);
    run->AddValue(kDataset, "dot_batch.rows64" + suffix,
                  BestNsPerOp(
                      [&] {
                        kernels.dot_batch(x.data(), matrix.data(), rows, k, k,
                                          out.data());
                        benchmark::DoNotOptimize(out.data());
                      },
                      2000));
  }
}

void RecordScoringTimings(bench::BenchRun* run, const std::string& label,
                          core::ScoringMode mode) {
  constexpr const char* kDataset = "micro";
  auto& fixture = PipelineFixture::Get();
  std::vector<data::ItemId> candidates;
  window::WindowWalker walker = fixture.MakeWalker(&candidates);
  core::TsPprRecommender recommender(fixture.model.get(),
                                     fixture.extractor.get(), "TS-PPR", mode);
  std::vector<double> scores(candidates.size(), 0.0);
  const double ns = BestNsPerOp(
      [&] {
        recommender.Score(0, walker, candidates, scores);
        benchmark::DoNotOptimize(scores.data());
      },
      500);
  run->AddValue(kDataset, "score_candidates." + label + "_us", ns * 1e-3);
  run->AddValue(kDataset, "score_candidates.num_candidates",
                static_cast<double>(candidates.size()));
}

void RunPrepass(bench::BenchRun* run) {
  RecordKernelTimings(run, "scalar", math::ScalarKernels());
  // The active tier duplicates scalar when AVX2 is unavailable; recording it
  // unconditionally keeps the JSON schema stable across machines.
  RecordKernelTimings(run, "simd", math::ActiveKernels());
  run->AddValue("micro", "simd_level_avx2",
                math::DetectSimdLevel() == math::SimdLevel::kAvx2 ? 1.0 : 0.0);
  RecordScoringTimings(run, "naive", core::ScoringMode::kNaive);
  RecordScoringTimings(run, "scalar", core::ScoringMode::kScalar);
  RecordScoringTimings(run, "simd", core::ScoringMode::kSimd);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run("micro_kernels", argc, argv);
  RunPrepass(&run);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RECONSUME_CHECK_OK(run.Finish());
  return 0;
}
