// Microbenchmarks of the hot paths under Algorithm 1 and the evaluation
// protocol: BLAS-1 kernels, the rank-1 mapping update, one full SGD step,
// window maintenance, and behavioral feature extraction.

#include <benchmark/benchmark.h>

#include "core/ts_ppr.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "features/feature_extractor.h"
#include "math/matrix.h"
#include "math/vector_ops.h"
#include "sampling/training_set.h"
#include "util/random.h"
#include "window/window_walker.h"

using namespace reconsume;

namespace {

void BM_Dot(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<double> x(k, 0.5), y(k, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Dot(x, y));
  }
}
BENCHMARK(BM_Dot)->Arg(4)->Arg(40)->Arg(80);

void BM_Axpy(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<double> x(k, 0.5), y(k, 0.25);
  for (auto _ : state) {
    math::Axpy(0.01, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Axpy)->Arg(40);

void BM_OuterProductUpdate(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  math::Matrix a(k, 4);
  std::vector<double> u(k, 0.5), f(4, 0.25);
  for (auto _ : state) {
    a.AddOuterProduct(0.01, u, f);
    benchmark::DoNotOptimize(a.Data().data());
  }
}
BENCHMARK(BM_OuterProductUpdate)->Arg(40);

void BM_Sigmoid(benchmark::State& state) {
  double x = -8.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Sigmoid(x));
    x += 0.001;
    if (x > 8.0) x = -8.0;
  }
}
BENCHMARK(BM_Sigmoid);

void BM_WindowAdvance(benchmark::State& state) {
  data::SyntheticTraceGenerator generator(data::GowallaLikeProfile(0.1));
  const data::Dataset dataset = generator.Generate().ValueOrDie();
  const auto& seq = dataset.sequence(0);
  for (auto _ : state) {
    window::WindowWalker walker(&seq, 100);
    while (!walker.Done()) walker.Advance();
    benchmark::DoNotOptimize(walker.step());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(seq.size()));
}
BENCHMARK(BM_WindowAdvance);

struct PipelineFixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;
  std::unique_ptr<features::FeatureExtractor> extractor;
  std::unique_ptr<sampling::TrainingSet> training_set;

  static PipelineFixture& Get() {
    static PipelineFixture* fixture = [] {
      auto* f = new PipelineFixture();
      data::SyntheticTraceGenerator generator(data::GowallaLikeProfile(0.1));
      f->dataset = generator.Generate()
                       .ValueOrDie()
                       .FilterByMinTrainLength(0.7, 100);
      f->split = std::make_unique<data::TrainTestSplit>(
          data::TrainTestSplit::Temporal(&f->dataset, 0.7).ValueOrDie());
      f->table = std::make_unique<features::StaticFeatureTable>(
          features::StaticFeatureTable::Compute(*f->split, 100).ValueOrDie());
      f->extractor = std::make_unique<features::FeatureExtractor>(
          f->table.get(), features::FeatureConfig::AllFeatures());
      f->training_set = std::make_unique<sampling::TrainingSet>(
          sampling::TrainingSet::Build(*f->split, *f->extractor, {})
              .ValueOrDie());
      return f;
    }();
    return *fixture;
  }
};

void BM_FeatureExtraction(benchmark::State& state) {
  auto& fixture = PipelineFixture::Get();
  const auto& seq = fixture.dataset.sequence(0);
  window::WindowWalker walker(&seq, 100);
  while (walker.step() < 120) walker.Advance();
  std::vector<data::ItemId> candidates;
  walker.EligibleCandidates(10, &candidates);
  std::vector<double> f(4);
  size_t i = 0;
  for (auto _ : state) {
    fixture.extractor->Extract(walker, candidates[i % candidates.size()], f);
    benchmark::DoNotOptimize(f.data());
    ++i;
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_SgdStepTsPpr(benchmark::State& state) {
  auto& fixture = PipelineFixture::Get();
  core::TsPprConfig config;
  config.latent_dim = static_cast<int>(state.range(0));
  auto model = core::TsPprModel::Create(fixture.dataset.num_users(),
                                        fixture.dataset.num_items(), 4, config)
                   .ValueOrDie();
  core::TrainOptions options;
  options.max_steps = 1;  // one SGD step per Train call
  options.min_checks = 1000;
  core::TsPprTrainer trainer(options);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trainer.Train(*fixture.training_set, &model, &rng).ok());
  }
}
BENCHMARK(BM_SgdStepTsPpr)->Arg(10)->Arg(40)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
