// Extension: ablations of the training-loop design decisions DESIGN.md
// calls out — learning-rate schedule, initialization scale, and convergence
// tolerance — measured on the Gowalla-like profile.

#include <cstdio>

#include "bench/common.h"

using namespace reconsume;

int main() {
  auto bundle = bench::MakeGowallaBundle();
  bench::PrintHeader("EXT: training-loop ablations", bundle);

  // Learning-rate schedules.
  {
    eval::TextTable table({"schedule", "alpha", "steps", "MaAP@10",
                           "MiAP@10"});
    struct Case {
      const char* label;
      core::LearningRateSchedule schedule;
      double alpha;
    };
    for (const Case& c :
         {Case{"constant (paper)", core::LearningRateSchedule::kConstant,
               0.05},
          Case{"constant", core::LearningRateSchedule::kConstant, 0.1},
          Case{"1/t decay", core::LearningRateSchedule::kInverseDecay, 0.05},
          Case{"1/t decay", core::LearningRateSchedule::kInverseDecay, 0.1}}) {
      auto config = bench::MakeTsPprConfig(bundle);
      config.train.schedule = c.schedule;
      config.model.learning_rate = c.alpha;
      auto method = bench::FitTsPpr(bundle, config);
      const auto* ts = static_cast<const core::TsPpr*>(method.owner.get());
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow({c.label, eval::TextTable::Cell(c.alpha, 2),
                    util::FormatWithCommas(ts->train_report().steps),
                    eval::TextTable::Cell(acc.MaapAt(10)),
                    eval::TextTable::Cell(acc.MiapAt(10))});
    }
    std::printf("learning-rate schedule:\n%s\n", table.ToString().c_str());
  }

  // Initialization scale (paper: std = sqrt(reg); alternatives fixed).
  {
    eval::TextTable table({"init std (latent/mapping)", "MaAP@10", "MiAP@10"});
    struct Case {
      const char* label;
      double latent, mapping;
    };
    for (const Case& c : {Case{"sqrt(reg) (paper)", -1, -1},
                          Case{"0.01 / 0.01", 0.01, 0.01},
                          Case{"0.1 / 0.1", 0.1, 0.1},
                          Case{"0.5 / 0.5", 0.5, 0.5}}) {
      auto config = bench::MakeTsPprConfig(bundle);
      config.model.init_std_latent = c.latent;
      config.model.init_std_mapping = c.mapping;
      auto method = bench::FitTsPpr(bundle, config);
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow({c.label, eval::TextTable::Cell(acc.MaapAt(10)),
                    eval::TextTable::Cell(acc.MiapAt(10))});
    }
    std::printf("initialization:\n%s\n", table.ToString().c_str());
  }

  // Convergence tolerance: how much accuracy does stopping earlier cost?
  {
    eval::TextTable table({"tolerance", "steps", "MaAP@10"});
    for (double tolerance : {1e-2, 1e-3, 1e-4}) {
      auto config = bench::MakeTsPprConfig(bundle);
      config.train.convergence_tolerance = tolerance;
      auto method = bench::FitTsPpr(bundle, config);
      const auto* ts = static_cast<const core::TsPpr*>(method.owner.get());
      const auto acc = bench::EvaluateMethod(bundle, &method);
      table.AddRow({eval::TextTable::Cell(tolerance, 4),
                    util::FormatWithCommas(ts->train_report().steps),
                    eval::TextTable::Cell(acc.MaapAt(10))});
    }
    std::printf("convergence tolerance (delta r~):\n%s\n",
                table.ToString().c_str());
  }
  return 0;
}
